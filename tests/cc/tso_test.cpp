#include "cc/tso.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"
#include "sim/kernel.hpp"

namespace rtdb::cc {
namespace {

using sim::Duration;
using sim::Kernel;
using testutil::make_txn;
using testutil::Rig;
using testutil::ScriptResult;
using testutil::spawn_scripted;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(TsoTest, TimestampsAssignedInBeginOrderFreshPerAttempt) {
  Kernel k;
  TimestampOrdering cc{k};
  CcTxn a = make_txn(1, 1), b = make_txn(2, 2);
  cc.on_begin(a);
  cc.on_begin(b);
  EXPECT_EQ(cc.timestamp_of(a.id), 1u);
  EXPECT_EQ(cc.timestamp_of(b.id), 2u);
  EXPECT_EQ(cc.timestamp_of(a.id), 1u);  // stable within the attempt
  cc.on_end(a);
  cc.on_begin(a);  // restarted attempt draws a fresh timestamp
  EXPECT_EQ(cc.timestamp_of(a.id), 3u);
}

TEST(TsoTest, InOrderOperationsSucceed) {
  Kernel k;
  TimestampOrdering cc{k};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}}, tu(0), tu(1), tu(0), r1);
  spawn_scripted(rig, t2, {{0, LockMode::kRead}}, tu(5), tu(1), tu(0), r2);
  k.run();
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(cc.rejections(), 0u);
}

TEST(TsoTest, LateReadUnderNewerWriteRejected) {
  Kernel k;
  TimestampOrdering cc{k};
  Rig rig{k, cc};
  // t1 begins first (ts 1) but performs its read late; t2 (ts 2) writes
  // the object in between: t1's read must be rejected.
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  auto slow_reader = [](Rig& rig, CcTxn& ctx, ScriptResult& r) -> sim::Task<void> {
    ctx.access = AccessSet::reads_then_writes({0}, {});
    rig.cc().on_begin(ctx);
    try {
      co_await rig.kernel().delay(Duration::units(10));
      co_await rig.cc().acquire(ctx, 0, LockMode::kRead);
      r.committed = true;
    } catch (const TxnAborted& a) {
      r.self_aborted = true;
      r.self_abort_reason = a.reason();
    }
    rig.cc().release_all(ctx);
    rig.cc().on_end(ctx);
  };
  rig.track(t1, k.spawn("t1", slow_reader(rig, t1, r1)));
  k.schedule_in(tu(1), [&] {});  // keep event order explicit
  spawn_scripted(rig, t2, {{0, LockMode::kWrite}}, tu(2), tu(1), tu(0), r2);
  k.run();
  EXPECT_TRUE(r2.committed);
  EXPECT_TRUE(r1.self_aborted);
  EXPECT_EQ(r1.self_abort_reason, AbortReason::kTimestampOrder);
  EXPECT_EQ(cc.rejections(), 1u);
}

TEST(TsoTest, LateWriteUnderNewerReadRejected) {
  Kernel k;
  TimestampOrdering cc{k};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  auto slow_writer = [](Rig& rig, CcTxn& ctx, ScriptResult& r) -> sim::Task<void> {
    ctx.access = AccessSet::reads_then_writes({}, {0});
    rig.cc().on_begin(ctx);
    try {
      co_await rig.kernel().delay(Duration::units(10));
      co_await rig.cc().acquire(ctx, 0, LockMode::kWrite);
      r.committed = true;
    } catch (const TxnAborted& a) {
      r.self_aborted = true;
    }
    rig.cc().release_all(ctx);
    rig.cc().on_end(ctx);
  };
  rig.track(t1, k.spawn("t1", slow_writer(rig, t1, r1)));
  spawn_scripted(rig, t2, {{0, LockMode::kRead}}, tu(2), tu(1), tu(0), r2);
  k.run();
  EXPECT_TRUE(r2.committed);
  EXPECT_TRUE(r1.self_aborted);
}

TEST(TsoTest, NeverBlocks) {
  Kernel k;
  TimestampOrdering cc{k};
  Rig rig{k, cc};
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  ScriptResult r1, r2;
  spawn_scripted(rig, t1, {{0, LockMode::kWrite}}, tu(0), tu(100), tu(0), r1);
  spawn_scripted(rig, t2, {{0, LockMode::kWrite}}, tu(1), tu(1), tu(0), r2);
  k.run();
  // t2's write (newer ts) succeeds immediately without waiting for t1.
  EXPECT_EQ(r2.committed_at, 2.0);
  EXPECT_EQ(cc.blocks(), 0u);
}

TEST(TsoTest, RestartWithFreshTimestampSucceedsAgainstOldConflict) {
  Kernel k;
  TimestampOrdering cc{k};
  Rig rig{k, cc};
  // Attempt 1 of t1 (ts 1) is rejected reading under t2's newer write
  // (ts 2); the restart draws ts 3 > 2 and succeeds — the reason restarts
  // take fresh timestamps.
  CcTxn t1 = make_txn(1, 1), t2 = make_txn(2, 2);
  cc.on_begin(t1);
  cc.on_begin(t2);
  bool first_rejected = false;
  bool second_ok = false;
  k.spawn("seq", [](Kernel&, TimestampOrdering& cc, CcTxn& t1, CcTxn& t2,
                    bool& first_rejected, bool& second_ok) -> sim::Task<void> {
    co_await cc.acquire(t2, 0, LockMode::kWrite);  // wts(0) = 2
    try {
      co_await cc.acquire(t1, 0, LockMode::kRead);
    } catch (const TxnAborted&) {
      first_rejected = true;
    }
    cc.on_end(t1);   // abort attempt 1
    cc.on_begin(t1); // restart: fresh timestamp (3)
    co_await cc.acquire(t1, 0, LockMode::kRead);
    second_ok = true;
    cc.on_end(t1);
    cc.on_end(t2);
  }(k, cc, t1, t2, first_rejected, second_ok));
  k.run();
  EXPECT_TRUE(first_rejected);
  EXPECT_TRUE(second_ok);
}

}  // namespace
}  // namespace rtdb::cc
