#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtdb::exp {
namespace {

Options parse_ok(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  std::string error;
  const auto opts = parse_options(static_cast<int>(args.size()),
                                  const_cast<char**>(args.data()), &error);
  EXPECT_TRUE(opts.has_value()) << error;
  return opts.value_or(Options{});
}

bool parse_fails(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  std::string error;
  return !parse_options(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()), &error)
              .has_value();
}

TEST(CliTest, DefaultsLeaveEverythingUnset) {
  const Options opts = parse_ok({});
  EXPECT_FALSE(opts.runs.has_value());
  EXPECT_FALSE(opts.seed.has_value());
  EXPECT_FALSE(opts.jobs.has_value());
  EXPECT_FALSE(opts.json_path.has_value());
  EXPECT_FALSE(opts.csv);
  EXPECT_FALSE(opts.quiet);
  EXPECT_GE(opts.effective_jobs(), 1);
}

TEST(CliTest, ParsesEveryFlag) {
  const Options opts = parse_ok({"--runs", "20", "--seed", "7", "--jobs", "4",
                                 "--json", "out.json", "--csv", "out.csv",
                                 "--quiet"});
  EXPECT_EQ(opts.runs, 20);
  EXPECT_EQ(opts.seed, 7u);
  EXPECT_EQ(opts.jobs, 4);
  EXPECT_EQ(opts.effective_jobs(), 4);
  EXPECT_EQ(opts.json_path, "out.json");
  EXPECT_TRUE(opts.csv);
  EXPECT_EQ(opts.csv_path, "out.csv");
  EXPECT_TRUE(opts.quiet);
}

TEST(CliTest, BareCsvStreamsToStdout) {
  const Options opts = parse_ok({"--csv", "--jobs", "2"});
  EXPECT_TRUE(opts.csv);
  EXPECT_FALSE(opts.csv_path.has_value());
  EXPECT_EQ(opts.jobs, 2);
}

TEST(CliTest, HelpShortCircuits) {
  EXPECT_TRUE(parse_ok({"--help"}).help);
  EXPECT_TRUE(parse_ok({"-h"}).help);
}

TEST(CliTest, RejectsBadInput) {
  EXPECT_TRUE(parse_fails({"--runs"}));
  EXPECT_TRUE(parse_fails({"--runs", "0"}));
  EXPECT_TRUE(parse_fails({"--runs", "ten"}));
  EXPECT_TRUE(parse_fails({"--jobs", "-2"}));
  EXPECT_TRUE(parse_fails({"--json"}));
  EXPECT_TRUE(parse_fails({"--frobnicate"}));
}

TEST(CliTest, UsageMentionsEveryFlag) {
  const std::string text = usage("bench");
  for (const char* flag :
       {"--runs", "--seed", "--jobs", "--json", "--csv", "--quiet"}) {
    EXPECT_NE(text.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace rtdb::exp
