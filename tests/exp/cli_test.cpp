#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtdb::exp {
namespace {

Options parse_ok(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  std::string error;
  const auto opts = parse_options(static_cast<int>(args.size()),
                                  const_cast<char**>(args.data()), &error);
  EXPECT_TRUE(opts.has_value()) << error;
  return opts.value_or(Options{});
}

bool parse_fails(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  std::string error;
  return !parse_options(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()), &error)
              .has_value();
}

TEST(CliTest, DefaultsLeaveEverythingUnset) {
  const Options opts = parse_ok({});
  EXPECT_FALSE(opts.runs.has_value());
  EXPECT_FALSE(opts.seed.has_value());
  EXPECT_FALSE(opts.jobs.has_value());
  EXPECT_FALSE(opts.json_path.has_value());
  EXPECT_FALSE(opts.csv);
  EXPECT_FALSE(opts.quiet);
  EXPECT_GE(opts.effective_jobs(), 1);
}

TEST(CliTest, ParsesEveryFlag) {
  const Options opts = parse_ok({"--runs", "20", "--seed", "7", "--jobs", "4",
                                 "--json", "out.json", "--csv", "out.csv",
                                 "--quiet"});
  EXPECT_EQ(opts.runs, 20);
  EXPECT_EQ(opts.seed, 7u);
  EXPECT_EQ(opts.jobs, 4);
  EXPECT_EQ(opts.effective_jobs(), 4);
  EXPECT_EQ(opts.json_path, "out.json");
  EXPECT_TRUE(opts.csv);
  EXPECT_EQ(opts.csv_path, "out.csv");
  EXPECT_TRUE(opts.quiet);
}

TEST(CliTest, BareCsvStreamsToStdout) {
  const Options opts = parse_ok({"--csv", "--jobs", "2"});
  EXPECT_TRUE(opts.csv);
  EXPECT_FALSE(opts.csv_path.has_value());
  EXPECT_EQ(opts.jobs, 2);
}

TEST(CliTest, HelpShortCircuits) {
  EXPECT_TRUE(parse_ok({"--help"}).help);
  EXPECT_TRUE(parse_ok({"-h"}).help);
}

TEST(CliTest, RejectsBadInput) {
  EXPECT_TRUE(parse_fails({"--runs"}));
  EXPECT_TRUE(parse_fails({"--runs", "0"}));
  EXPECT_TRUE(parse_fails({"--runs", "ten"}));
  EXPECT_TRUE(parse_fails({"--jobs", "-2"}));
  EXPECT_TRUE(parse_fails({"--json"}));
  EXPECT_TRUE(parse_fails({"--frobnicate"}));
}

TEST(CliTest, UsageMentionsEveryFlag) {
  const std::string text = usage("bench");
  for (const char* flag :
       {"--runs", "--seed", "--jobs", "--json", "--csv", "--quiet",
        "--partition", "--arrival-rate"}) {
    EXPECT_NE(text.find(flag), std::string::npos) << flag;
  }
}

TEST(CliTest, ParsesPartitionSpecs) {
  const Options opts =
      parse_ok({"--partition", "0+1:400:300,2:50", "--partition", "0:10:asym"});
  ASSERT_EQ(opts.partitions.size(), 3u);
  EXPECT_EQ(opts.partitions[0].group, (std::vector<net::SiteId>{0, 1}));
  EXPECT_EQ(opts.partitions[0].at, sim::Duration::from_units(400));
  EXPECT_EQ(opts.partitions[0].heal_after, sim::Duration::from_units(300));
  EXPECT_TRUE(opts.partitions[0].symmetric);
  EXPECT_EQ(opts.partitions[1].group, (std::vector<net::SiteId>{2}));
  EXPECT_EQ(opts.partitions[1].heal_after, sim::Duration::zero());
  EXPECT_EQ(opts.partitions[2].group, (std::vector<net::SiteId>{0}));
  EXPECT_FALSE(opts.partitions[2].symmetric);

  net::FaultSpec spec;
  opts.apply_faults(&spec);
  EXPECT_EQ(spec.partitions.size(), 3u);
  EXPECT_TRUE(spec.active());
}

TEST(CliTest, ParsesExplicitSymAndHealWithAsym) {
  const Options opts = parse_ok({"--partition", "1:20:50:sym,0:5:10:asym"});
  ASSERT_EQ(opts.partitions.size(), 2u);
  EXPECT_TRUE(opts.partitions[0].symmetric);
  EXPECT_FALSE(opts.partitions[1].symmetric);
  EXPECT_EQ(opts.partitions[1].heal_after, sim::Duration::from_units(10));
}

TEST(CliTest, RejectsBadPartitionSpecs) {
  EXPECT_TRUE(parse_fails({"--partition"}));
  EXPECT_TRUE(parse_fails({"--partition", "0"}));            // no cut time
  EXPECT_TRUE(parse_fails({"--partition", ":400"}));         // empty group
  EXPECT_TRUE(parse_fails({"--partition", "a:400"}));        // bad site id
  EXPECT_TRUE(parse_fails({"--partition", "0:-1"}));         // negative time
  EXPECT_TRUE(parse_fails({"--partition", "0:400:wat"}));    // bad tail
  EXPECT_TRUE(parse_fails({"--partition", "0:400:300:300"}));
  EXPECT_TRUE(parse_fails({"--partition", "0+x:400"}));
}

TEST(CliTest, ParsesArrivalRate) {
  const Options opts = parse_ok({"--arrival-rate", "0.4"});
  ASSERT_TRUE(opts.arrival_rate.has_value());
  EXPECT_DOUBLE_EQ(*opts.arrival_rate, 0.4);
}

TEST(CliTest, RejectsNonPositiveArrivalRate) {
  EXPECT_TRUE(parse_fails({"--arrival-rate"}));
  EXPECT_TRUE(parse_fails({"--arrival-rate", "0"}));
  EXPECT_TRUE(parse_fails({"--arrival-rate", "-2"}));
  EXPECT_TRUE(parse_fails({"--arrival-rate", "fast"}));
}

}  // namespace
}  // namespace rtdb::exp
