// The engine's core guarantee: results are a pure function of
// (spec, runs, seed) — the worker count changes wall-clock time only.
// `--jobs 8` must be byte-identical to `--jobs 1`, and both must match
// the serial ExperimentRunner::run_many path the figures used before.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "exp/artifacts.hpp"
#include "exp/sweep.hpp"

namespace rtdb::exp {
namespace {

// A shrunk fig2 grid: 2 sizes x 2 protocols, 60 transactions per run.
SweepSpec small_fig2_grid() {
  SweepSpec spec;
  spec.name = "fig2_small";
  spec.title = "determinism fixture";
  spec.default_runs = 3;
  for (const std::uint32_t size : {4u, 12u}) {
    for (const core::Protocol p :
         {core::Protocol::kPriorityCeiling, core::Protocol::kTwoPhase}) {
      core::SystemConfig cfg;
      cfg.protocol = p;
      cfg.db_objects = 100;
      cfg.workload.size_min = size;
      cfg.workload.size_max = size;
      cfg.workload.mean_interarrival = sim::Duration::units(50);
      cfg.workload.transaction_count = 60;
      cfg.seed = 1;
      spec.add_cell({{"size", std::to_string(size)},
                     {"protocol", core::to_string(p)}},
                    cfg);
    }
  }
  return spec;
}

// A faulty grid: 5% loss plus the *manager site* crashing mid-run, with
// failover on and off. The retransmission/backoff schedule and the whole
// failover history must be a pure function of (config, seed) for the
// engine's byte-identity to survive the resilience machinery.
SweepSpec faulty_failover_grid() {
  SweepSpec spec;
  spec.name = "failover_small";
  spec.title = "faulty determinism fixture";
  spec.default_runs = 2;
  for (const bool failover : {true, false}) {
    core::SystemConfig cfg;
    cfg.scheme = core::DistScheme::kGlobalCeiling;
    cfg.sites = 3;
    cfg.db_objects = 60;
    cfg.cpu_per_object = sim::Duration::units(2);
    cfg.io_per_object = sim::Duration::zero();
    cfg.comm_delay = sim::Duration::units(2);
    cfg.commit_vote_timeout = sim::Duration::units(8);
    cfg.workload.transaction_count = 100;
    cfg.workload.read_only_fraction = 0.3;
    cfg.workload.size_min = 3;
    cfg.workload.size_max = 6;
    cfg.workload.mean_interarrival = sim::Duration::units(5);
    cfg.workload.slack_min = 10;
    cfg.workload.slack_max = 20;
    cfg.workload.est_time_per_object = sim::Duration::units(3);
    cfg.enable_failover = failover;
    cfg.faults.drop_rate = 0.05;
    cfg.faults.crashes.push_back(
        net::FaultSpec::Crash{0, sim::Duration::units(150), {}});
    cfg.seed = 4;
    spec.add_cell({{"failover", failover ? "on" : "off"}}, cfg);
  }
  return spec;
}

// A partitioned + overloaded grid: the manager site is cut off mid-run
// (healing later) under 2x open-loop load with admission control on. Link
// cuts are pure data and shedding is decided in virtual time, so the whole
// partition/failover/shedding history must replay byte-identically for any
// worker count.
SweepSpec partitioned_overload_grid() {
  SweepSpec spec;
  spec.name = "partition_small";
  spec.title = "partitioned determinism fixture";
  spec.default_runs = 2;
  for (const bool overload : {false, true}) {
    core::SystemConfig cfg;
    cfg.scheme = core::DistScheme::kGlobalCeiling;
    cfg.sites = 3;
    cfg.db_objects = 60;
    cfg.cpu_per_object = sim::Duration::units(2);
    cfg.io_per_object = sim::Duration::zero();
    cfg.comm_delay = sim::Duration::units(2);
    cfg.commit_vote_timeout = sim::Duration::units(8);
    cfg.workload.transaction_count = 100;
    cfg.workload.read_only_fraction = 0.3;
    cfg.workload.size_min = 3;
    cfg.workload.size_max = 6;
    // 5x open-loop overload: one CPU per site serves ~9tu of work per
    // transaction against a per-site arrival every ~3tu, so the admitted
    // population outgrows max_running + queue_limit and the shedder must
    // fire (the 1x cell stays below the cap).
    cfg.workload.mean_interarrival =
        sim::Duration::units(overload ? 1 : 5);
    cfg.workload.slack_min = 10;
    cfg.workload.slack_max = 20;
    cfg.workload.est_time_per_object = sim::Duration::units(3);
    cfg.faults.drop_rate = 0.05;
    cfg.faults.partitions.push_back(net::FaultSpec::Partition{
        {0}, sim::Duration::units(150), sim::Duration::units(300), true});
    cfg.admission.enabled = true;
    cfg.admission.max_running = 6;
    cfg.admission.queue_limit = 2;
    cfg.seed = 4;
    spec.add_cell({{"load", overload ? "5x" : "1x"}}, cfg);
  }
  return spec;
}

Options with_jobs(int jobs) {
  Options opts;
  opts.jobs = jobs;
  opts.quiet = true;
  return opts;
}

TEST(SweepDeterminismTest, ParallelArtifactsAreByteIdenticalToSerial) {
  const SweepSpec spec = small_fig2_grid();
  const SweepResult serial = run_sweep(spec, with_jobs(1));
  const SweepResult parallel = run_sweep(spec, with_jobs(8));

  EXPECT_EQ(artifact_json(serial).dump(2), artifact_json(parallel).dump(2));
  EXPECT_EQ(artifact_csv(serial), artifact_csv(parallel));
}

TEST(SweepDeterminismTest, FaultyFailoverArtifactsAreByteIdenticalAcrossJobs) {
  const SweepSpec spec = faulty_failover_grid();
  const SweepResult serial = run_sweep(spec, with_jobs(1));
  const SweepResult parallel = run_sweep(spec, with_jobs(8));

  EXPECT_EQ(artifact_json(serial).dump(2), artifact_json(parallel).dump(2));
  EXPECT_EQ(artifact_csv(serial), artifact_csv(parallel));

  // Sanity: the fixture actually exercised the resilience machinery, and
  // the audit that runs at the end of every faulty run stayed clean.
  EXPECT_GT(serial.cells[0].mean_of("retransmissions"), 0.0);
  EXPECT_GT(serial.cells[0].mean_of("failovers"), 0.0);
  EXPECT_EQ(serial.cells[0].mean_of("invariant_violations"), 0.0);
  EXPECT_EQ(serial.cells[1].mean_of("invariant_violations"), 0.0);
}

TEST(SweepDeterminismTest, PartitionedOverloadArtifactsAreByteIdenticalAcrossJobs) {
  const SweepSpec spec = partitioned_overload_grid();
  const SweepResult serial = run_sweep(spec, with_jobs(1));
  const SweepResult parallel = run_sweep(spec, with_jobs(8));

  EXPECT_EQ(artifact_json(serial).dump(2), artifact_json(parallel).dump(2));
  EXPECT_EQ(artifact_csv(serial), artifact_csv(parallel));

  // Sanity: the cut, the failover, and (under 2x load) the shedder all
  // actually fired, and the per-run invariants held through it all.
  EXPECT_GT(serial.cells[0].mean_of("partition_drops"), 0.0);
  EXPECT_GT(serial.cells[0].mean_of("failovers"), 0.0);
  EXPECT_GT(serial.cells[1].mean_of("shed"), 0.0);
  EXPECT_EQ(serial.cells[0].mean_of("invariant_violations"), 0.0);
  EXPECT_EQ(serial.cells[1].mean_of("invariant_violations"), 0.0);
}

TEST(SweepDeterminismTest, EngineMatchesSerialRunMany) {
  const SweepSpec spec = small_fig2_grid();
  const SweepResult result = run_sweep(spec, with_jobs(8));
  ASSERT_EQ(result.cells.size(), 4u);
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    const auto expected =
        core::ExperimentRunner::run_many(spec.cells[c].config, 3);
    const auto& actual = result.cells[c].runs;
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(actual[r].metrics.committed, expected[r].metrics.committed);
      EXPECT_EQ(actual[r].restarts, expected[r].restarts);
      EXPECT_DOUBLE_EQ(actual[r].metrics.throughput_objects_per_sec,
                       expected[r].metrics.throughput_objects_per_sec);
      EXPECT_EQ(actual[r].elapsed, expected[r].elapsed);
    }
  }
}

TEST(SweepDeterminismTest, RunsAndSeedOverridesApply) {
  SweepSpec spec = small_fig2_grid();
  spec.cells.resize(1);
  Options opts = with_jobs(2);
  opts.runs = 5;
  opts.seed = 100;
  const SweepResult result = run_sweep(spec, opts);
  EXPECT_EQ(result.runs_per_cell, 5);
  EXPECT_EQ(result.base_seed, 100u);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].runs.size(), 5u);

  // Seed 100's runs differ from seed 1's (the override took effect) but
  // repeat exactly under a different worker count.
  core::SystemConfig reference = spec.cells[0].config;
  reference.seed = 100;
  const auto expected = core::ExperimentRunner::run_many(reference, 5);
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(result.cells[0].runs[r].metrics.committed,
              expected[r].metrics.committed);
  }
}

}  // namespace
}  // namespace rtdb::exp
