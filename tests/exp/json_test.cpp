#include "exp/json.hpp"

#include <gtest/gtest.h>

namespace rtdb::exp {
namespace {

TEST(JsonTest, BuildsAndDumpsCompact) {
  Json obj = Json::object();
  obj.set("name", Json{"fig2"});
  obj.set("n", Json{10});
  obj.set("ok", Json{true});
  Json arr = Json::array();
  arr.push_back(Json{1.5});
  arr.push_back(Json{});
  obj.set("values", std::move(arr));
  EXPECT_EQ(obj.dump(),
            "{\"name\": \"fig2\", \"n\": 10, \"ok\": true, "
            "\"values\": [1.5, null]}");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", Json{1});
  obj.set("alpha", Json{2});
  EXPECT_EQ(obj.members()[0].first, "zebra");
  EXPECT_EQ(obj.members()[1].first, "alpha");
}

TEST(JsonTest, RoundTripsThroughParse) {
  Json obj = Json::object();
  obj.set("title", Json{"a \"quoted\" name\nwith newline"});
  obj.set("pi", Json{3.141592653589793});
  obj.set("neg", Json{-0.25});
  Json cells = Json::array();
  Json cell = Json::object();
  cell.set("seed", Json{std::uint64_t{42}});
  cells.push_back(std::move(cell));
  obj.set("cells", std::move(cells));

  const std::string text = obj.dump(2);
  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("title")->as_string(),
            "a \"quoted\" name\nwith newline");
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_number(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(parsed->find("neg")->as_number(), -0.25);
  EXPECT_EQ(parsed->find("cells")->items().size(), 1u);
  EXPECT_DOUBLE_EQ(
      parsed->find("cells")->items()[0].find("seed")->as_number(), 42.0);
  // Dump of the parse equals the original dump: the format is a fixpoint.
  EXPECT_EQ(parsed->dump(2), text);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(Json::parse("[1, 2").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(Json::parse("").has_value());
}

TEST(JsonTest, NumberFormattingIsStableAndShort) {
  EXPECT_EQ(Json::format_number(0.0), "0");
  EXPECT_EQ(Json::format_number(10.0), "10");
  EXPECT_EQ(Json::format_number(-3.0), "-3");
  EXPECT_EQ(Json::format_number(0.5), "0.5");
  // Shortest round-trip: re-parsing yields the identical double.
  const double value = 158.83720930232559;
  const std::string text = Json::format_number(value);
  EXPECT_DOUBLE_EQ(std::stod(text), value);
}

}  // namespace
}  // namespace rtdb::exp
