// Artifact schema contract: the JSON document round-trips through the
// parser and carries every documented key; the CSV is long-format with a
// fixed header. Results are fabricated — the schema does not depend on
// the simulator.

#include <gtest/gtest.h>

#include <sstream>

#include "exp/artifacts.hpp"

namespace rtdb::exp {
namespace {

SweepResult fabricated_result() {
  SweepResult result;
  result.name = "fig2_throughput";
  result.title = "Fig 2: fixture";
  result.runs_per_cell = 2;
  result.base_seed = 1;
  for (int c = 0; c < 2; ++c) {
    CellResult cell;
    cell.axes = {{"size", std::to_string(4 * (c + 1))}, {"protocol", "C"}};
    cell.base_seed = 1;
    for (int r = 0; r < 2; ++r) {
      core::RunResult run;
      run.metrics.arrived = 10;
      run.metrics.processed = 10;
      run.metrics.committed = 9 - r;
      run.metrics.missed = 1 + static_cast<std::uint64_t>(r);
      run.metrics.pct_missed = 10.0 * (1 + r);
      run.metrics.throughput_objects_per_sec = 100.0 + c * 10 + r;
      run.restarts = static_cast<std::uint64_t>(c + r);
      run.elapsed = sim::Duration::units(1000);
      cell.runs.push_back(run);
    }
    result.cells.push_back(std::move(cell));
  }
  return result;
}

TEST(ArtifactTest, JsonCarriesEveryDocumentedKey) {
  const Json doc = artifact_json(fabricated_result());
  const std::string text = doc.dump(2);

  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  for (const char* key : {"schema_version", "benchmark", "title",
                          "runs_per_cell", "base_seed", "cells"}) {
    EXPECT_TRUE(parsed->contains(key)) << key;
  }
  EXPECT_DOUBLE_EQ(parsed->find("schema_version")->as_number(),
                   kArtifactSchemaVersion);
  EXPECT_EQ(parsed->find("benchmark")->as_string(), "fig2_throughput");
  EXPECT_DOUBLE_EQ(parsed->find("runs_per_cell")->as_number(), 2.0);

  const Json& cells = *parsed->find("cells");
  ASSERT_TRUE(cells.is_array());
  ASSERT_EQ(cells.items().size(), 2u);
  for (const Json& cell : cells.items()) {
    ASSERT_TRUE(cell.contains("axes"));
    ASSERT_TRUE(cell.contains("seed"));
    ASSERT_TRUE(cell.contains("metrics"));
    EXPECT_TRUE(cell.find("axes")->contains("size"));
    EXPECT_TRUE(cell.find("axes")->contains("protocol"));
    const Json& metrics = *cell.find("metrics");
    // Every scalar of the catalog appears, each with the full aggregate.
    for (const core::RunScalar& scalar : core::run_scalars()) {
      const Json* agg = metrics.find(scalar.name);
      ASSERT_NE(agg, nullptr) << scalar.name;
      for (const char* stat : {"mean", "stddev", "ci95", "min", "max", "n"}) {
        EXPECT_TRUE(agg->contains(stat)) << scalar.name << "." << stat;
      }
      EXPECT_DOUBLE_EQ(agg->find("n")->as_number(), 2.0);
    }
  }

  // Spot-check one aggregated value: cell 0 throughput mean of {100, 101}.
  const Json& thr = *cells.items()[0].find("metrics")->find(
      "throughput_objects_per_sec");
  EXPECT_DOUBLE_EQ(thr.find("mean")->as_number(), 100.5);
  EXPECT_DOUBLE_EQ(thr.find("min")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(thr.find("max")->as_number(), 101.0);
}

TEST(ArtifactTest, CsvIsLongFormatWithAxisColumns) {
  const std::string csv = artifact_csv(fabricated_result());
  std::istringstream lines{csv};
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "benchmark,cell,size,protocol,metric,mean,stddev,ci95,min,max,n");

  std::size_t rows = 0;
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++rows;
    EXPECT_EQ(line.rfind("fig2_throughput,", 0), 0u) << line;
  }
  // 2 cells x one row per catalog scalar.
  EXPECT_EQ(rows, 2 * core::run_scalars().size());
}

}  // namespace
}  // namespace rtdb::exp
