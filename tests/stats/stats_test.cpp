#include <gtest/gtest.h>

#include "stats/metrics.hpp"
#include "stats/monitor.hpp"
#include "stats/table.hpp"

namespace rtdb::stats {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at(std::int64_t n) { return TimePoint::origin() + Duration::units(n); }

TxnRecord arrival(std::uint64_t id, std::uint32_t size, std::int64_t t,
                  std::int64_t deadline) {
  TxnRecord r;
  r.id = db::TxnId{id};
  r.size = size;
  r.arrival = at(t);
  r.deadline = at(deadline);
  return r;
}

TEST(MonitorTest, LifecycleCounters) {
  PerformanceMonitor m;
  m.on_arrival(arrival(1, 3, 0, 100));
  m.on_arrival(arrival(2, 5, 1, 100));
  m.on_start(db::TxnId{1}, at(0));
  m.on_commit(db::TxnId{1}, at(10));
  m.on_deadline_miss(db::TxnId{2}, at(100));
  EXPECT_EQ(m.arrived(), 2u);
  EXPECT_EQ(m.processed(), 2u);
  EXPECT_EQ(m.committed(), 1u);
  EXPECT_EQ(m.missed(), 1u);
  EXPECT_EQ(m.record(db::TxnId{1}).response(), Duration::units(10));
}

TEST(MonitorTest, RestartAndBlockingAccumulate) {
  PerformanceMonitor m;
  m.on_arrival(arrival(1, 2, 0, 50));
  m.on_restart(db::TxnId{1});
  m.on_restart(db::TxnId{1});
  m.on_attempt_stats(db::TxnId{1}, Duration::units(3), 1);
  m.on_attempt_stats(db::TxnId{1}, Duration::units(4), 2);
  const auto& r = m.record(db::TxnId{1});
  EXPECT_EQ(r.aborts, 2u);
  EXPECT_EQ(r.blocked, Duration::units(7));
  EXPECT_EQ(r.ceiling_blocks, 3u);
}

TEST(MonitorTest, FindUnknownReturnsNull) {
  PerformanceMonitor m;
  EXPECT_EQ(m.find(db::TxnId{42}), nullptr);
}

TEST(MetricsTest, ComputesPaperFormulas) {
  PerformanceMonitor m;
  // Two committed transactions of sizes 4 and 6, one miss of size 10,
  // over 2 "seconds" of virtual time.
  m.on_arrival(arrival(1, 4, 0, 1000));
  m.on_arrival(arrival(2, 6, 0, 1000));
  m.on_arrival(arrival(3, 10, 0, 500));
  m.on_commit(db::TxnId{1}, at(100));
  m.on_commit(db::TxnId{2}, at(200));
  m.on_deadline_miss(db::TxnId{3}, at(500));
  const Duration elapsed = Duration::units(2 * sim::kUnitsPerSecond);
  const Metrics metrics = Metrics::compute(m.records(), elapsed);
  EXPECT_EQ(metrics.processed, 3u);
  EXPECT_EQ(metrics.committed, 2u);
  EXPECT_EQ(metrics.missed, 1u);
  EXPECT_NEAR(metrics.pct_missed, 100.0 / 3.0, 1e-9);
  // Normalized throughput counts only successful transactions' objects.
  EXPECT_DOUBLE_EQ(metrics.throughput_objects_per_sec, (4 + 6) / 2.0);
  EXPECT_DOUBLE_EQ(metrics.avg_response_units, 150.0);
}

TEST(MetricsTest, UnprocessedRecordsAreExcluded) {
  PerformanceMonitor m;
  m.on_arrival(arrival(1, 4, 0, 1000));  // never finishes (end of run)
  m.on_arrival(arrival(2, 6, 0, 1000));
  m.on_commit(db::TxnId{2}, at(10));
  const Metrics metrics =
      Metrics::compute(m.records(), Duration::units(sim::kUnitsPerSecond));
  EXPECT_EQ(metrics.arrived, 2u);
  EXPECT_EQ(metrics.processed, 1u);
  EXPECT_DOUBLE_EQ(metrics.pct_missed, 0.0);
}

TEST(RunAggregateTest, MeanStddevMinMax) {
  const double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const RunAggregate a = RunAggregate::over(samples);
  EXPECT_DOUBLE_EQ(a.mean, 5.0);
  EXPECT_NEAR(a.stddev, 2.138, 1e-3);  // sample stddev
  // 95% CI half-width: t_{0.975,7} * stddev / sqrt(8) = 2.365 * 0.7559...
  EXPECT_NEAR(a.ci95, 1.788, 1e-3);
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
  EXPECT_EQ(a.n, 8u);
}

TEST(RunAggregateTest, EmptyAndSingle) {
  EXPECT_EQ(RunAggregate::over({}).n, 0u);
  const double one[] = {3.0};
  const RunAggregate a = RunAggregate::over(one);
  EXPECT_DOUBLE_EQ(a.mean, 3.0);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
  EXPECT_DOUBLE_EQ(a.ci95, 0.0);  // no spread estimate from one sample
}

TEST(RunAggregateTest, LargeSampleCiUsesNormalApproximation) {
  std::vector<double> samples(100);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<double>(i % 2);  // mean 0.5, stddev ~0.5025
  }
  const RunAggregate a = RunAggregate::over(samples);
  EXPECT_NEAR(a.ci95, 1.960 * a.stddev / 10.0, 1e-9);
}

TEST(TableTest, AlignedTextOutput) {
  Table t{{"size", "PCP", "2PL"}};
  t.add_row({"4", "123.40", "99.21"});
  t.add_row({"20", "120.00", "7.55"});
  const std::string text = t.to_text("Fig 2");
  EXPECT_NE(text.find("== Fig 2 =="), std::string::npos);
  EXPECT_NE(text.find("size"), std::string::npos);
  EXPECT_NE(text.find("123.40"), std::string::npos);
  // Columns align: every line has the same position for the last column.
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(TableTest, CsvOutput) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(TableTest, AggregateFormatsMeanWithConfidence) {
  RunAggregate a;
  a.mean = 158.83;
  a.ci95 = 4.271;
  EXPECT_EQ(Table::num(a), "158.83 ±4.27");
  EXPECT_EQ(Table::num(a, 1), "158.8 ±4.3");
}

}  // namespace
}  // namespace rtdb::stats
