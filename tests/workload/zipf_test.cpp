// ZipfDistribution and its workload integration: analytic mass, replay
// determinism, stream-position independence of theta, and the guarantee
// that theta = 0 leaves the generator's output bit-identical to a build
// without the knob (uniform sampling takes the pre-existing path).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/random.hpp"
#include "workload/generator.hpp"

namespace rtdb::workload {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::RandomStream;
using sim::ZipfDistribution;

TEST(ZipfDistributionTest, MassSumsToOneAndMatchesDefinition) {
  const std::uint32_t n = 40;
  const double theta = 0.9;
  ZipfDistribution zipf{n, theta};
  double sum = 0.0;
  double weight_sum = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    weight_sum += 1.0 / std::pow(r + 1.0, theta);
  }
  for (std::uint32_t r = 0; r < n; ++r) {
    const double expected = (1.0 / std::pow(r + 1.0, theta)) / weight_sum;
    EXPECT_NEAR(zipf.mass(r), expected, 1e-12);
    sum += zipf.mass(r);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Monotone: lower rank, higher mass.
  for (std::uint32_t r = 1; r < n; ++r) {
    EXPECT_GT(zipf.mass(r - 1), zipf.mass(r));
  }
}

TEST(ZipfDistributionTest, ThetaZeroIsExactlyUniform) {
  const std::uint32_t n = 32;
  ZipfDistribution zipf{n, 0.0};
  for (std::uint32_t r = 0; r < n; ++r) {
    EXPECT_NEAR(zipf.mass(r), 1.0 / n, 1e-12);
  }
}

TEST(ZipfDistributionTest, SamplingReplaysExactly) {
  ZipfDistribution zipf{100, 1.1};
  RandomStream a{42};
  RandomStream b{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b));
  }
}

TEST(ZipfDistributionTest, SampleConsumesOneDrawRegardlessOfTheta) {
  // The draw count must not depend on theta: every sample is exactly one
  // next_double inverted through the CDF, so the stream position of any
  // later draw is unchanged when the skew knob moves.
  for (const double theta : {0.0, 0.5, 0.9, 2.0}) {
    ZipfDistribution zipf{64, theta};
    RandomStream sampled{7};
    RandomStream advanced{7};
    for (int i = 0; i < 100; ++i) {
      (void)zipf.sample(sampled);
      (void)advanced.next_double();
    }
    EXPECT_EQ(sampled.next_u64(), advanced.next_u64()) << "theta " << theta;
  }
}

TEST(ZipfDistributionTest, EmpiricalFrequenciesTrackAnalyticMass) {
  const std::uint32_t n = 50;
  ZipfDistribution zipf{n, 0.9};
  RandomStream rng{123};
  const int samples = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < samples; ++i) ++counts[zipf.sample(rng)];
  // Frequency-rank agreement: every rank within 3 sigma of its analytic
  // mass (binomial stddev), and the hot ranks ordered by count.
  for (std::uint32_t r = 0; r < n; ++r) {
    const double p = zipf.mass(r);
    const double sigma = std::sqrt(samples * p * (1.0 - p));
    EXPECT_NEAR(counts[r], samples * p, 4.0 * sigma) << "rank " << r;
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[20]);
}

// ---- workload integration ----

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.mean_interarrival = Duration::units(10);
  cfg.size_min = 2;
  cfg.size_max = 6;
  cfg.read_only_fraction = 0.5;
  cfg.slack_min = 4;
  cfg.slack_max = 8;
  cfg.est_time_per_object = Duration::units(3);
  cfg.transaction_count = 150;
  return cfg;
}

std::vector<txn::TransactionSpec> generate(const WorkloadConfig& cfg,
                                           std::uint64_t seed) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{60, 1, db::Placement::kSingleSite}};
  std::vector<txn::TransactionSpec> specs;
  TransactionGenerator gen{k, schema, cfg, sim::RandomStream{seed},
                           [&](txn::TransactionSpec s) { specs.push_back(s); }};
  gen.start();
  k.run();
  return specs;
}

bool identical(const std::vector<txn::TransactionSpec>& a,
               const std::vector<txn::TransactionSpec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id.value != b[i].id.value || a[i].arrival != b[i].arrival ||
        a[i].deadline != b[i].deadline ||
        a[i].read_only != b[i].read_only ||
        a[i].access.operations().size() != b[i].access.operations().size()) {
      return false;
    }
    for (std::size_t o = 0; o < a[i].access.operations().size(); ++o) {
      if (a[i].access.operations()[o].object !=
              b[i].access.operations()[o].object ||
          a[i].access.operations()[o].mode !=
              b[i].access.operations()[o].mode) {
        return false;
      }
    }
  }
  return true;
}

TEST(ZipfWorkloadTest, ThetaZeroIsBitIdenticalToUniformPath) {
  // Explicitly setting the knob to zero must not perturb a single draw:
  // the generator takes the pre-existing sample_without_replacement path.
  WorkloadConfig uniform = base_config();
  WorkloadConfig zipf_zero = base_config();
  zipf_zero.zipf_theta = 0.0;
  EXPECT_TRUE(identical(generate(uniform, 9), generate(zipf_zero, 9)));
}

TEST(ZipfWorkloadTest, SkewedSpecsAreWellFormedAndDeterministic) {
  WorkloadConfig cfg = base_config();
  cfg.zipf_theta = 0.9;
  const auto specs = generate(cfg, 5);
  ASSERT_EQ(specs.size(), 150u);
  for (const auto& s : specs) {
    std::set<db::ObjectId> objects;
    for (const auto& op : s.access.operations()) {
      EXPECT_LT(op.object, 60u);
      objects.insert(op.object);
    }
    // Distinct objects, as with uniform sampling.
    EXPECT_EQ(objects.size(), s.access.operations().size());
  }
  EXPECT_TRUE(identical(specs, generate(cfg, 5)));
}

TEST(ZipfWorkloadTest, SkewConcentratesAccessesOnHotObjects) {
  WorkloadConfig cfg = base_config();
  cfg.transaction_count = 400;
  std::vector<int> uniform_hits(60, 0);
  for (const auto& s : generate(cfg, 3)) {
    for (const auto& op : s.access.operations()) ++uniform_hits[op.object];
  }
  cfg.zipf_theta = 1.2;
  std::vector<int> skewed_hits(60, 0);
  int hot = 0, total = 0;
  for (const auto& s : generate(cfg, 3)) {
    for (const auto& op : s.access.operations()) {
      ++skewed_hits[op.object];
      ++total;
      if (op.object < 6) ++hot;  // the 10% hottest ranks
    }
  }
  // Under theta=1.2 the top-6 ranks carry far more than their uniform 10%.
  EXPECT_GT(hot, total / 4);
  int uniform_hot = 0, uniform_total = 0;
  for (std::uint32_t o = 0; o < 60; ++o) {
    uniform_total += uniform_hits[o];
    if (o < 6) uniform_hot += uniform_hits[o];
  }
  EXPECT_LT(uniform_hot * 5, uniform_total);  // uniform: roughly 10%
}

}  // namespace
}  // namespace rtdb::workload
