#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rtdb::workload {
namespace {

using sim::Duration;
using sim::Kernel;

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.mean_interarrival = Duration::units(10);
  cfg.size_min = 2;
  cfg.size_max = 5;
  cfg.read_only_fraction = 0.5;
  cfg.slack_min = 4;
  cfg.slack_max = 8;
  cfg.est_time_per_object = Duration::units(3);
  cfg.transaction_count = 200;
  return cfg;
}

TEST(GeneratorTest, GeneratesConfiguredCount) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{50, 1, db::Placement::kSingleSite}};
  std::vector<txn::TransactionSpec> specs;
  TransactionGenerator gen{k, schema, base_config(), sim::RandomStream{1},
                           [&](txn::TransactionSpec s) { specs.push_back(s); }};
  gen.start();
  k.run();
  EXPECT_EQ(specs.size(), 200u);
  EXPECT_EQ(gen.generated(), 200u);
  EXPECT_TRUE(gen.finished());
}

TEST(GeneratorTest, SpecsAreWellFormed) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{50, 1, db::Placement::kSingleSite}};
  std::vector<txn::TransactionSpec> specs;
  TransactionGenerator gen{k, schema, base_config(), sim::RandomStream{2},
                           [&](txn::TransactionSpec s) { specs.push_back(s); }};
  gen.start();
  k.run();
  std::set<std::uint64_t> ids;
  for (const auto& s : specs) {
    EXPECT_TRUE(s.id.valid());
    ids.insert(s.id.value);
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 5u);
    EXPECT_GT(s.deadline, s.arrival);
    // Deadline proportional to size: slack in [4, 8] x 3tu per object.
    const double per_object =
        (s.deadline - s.arrival).as_units() / s.size();
    EXPECT_GE(per_object, 4 * 3 - 1e-9);
    EXPECT_LE(per_object, 8 * 3 + 1e-9);
    // EDF at arrival: priority key equals the deadline.
    EXPECT_EQ(s.priority.key(), s.deadline.as_ticks());
    // Objects are distinct and in range.
    std::set<db::ObjectId> objs;
    for (const auto& op : s.access.operations()) {
      EXPECT_LT(op.object, 50u);
      objs.insert(op.object);
      EXPECT_EQ(op.mode, s.read_only ? cc::LockMode::kRead : cc::LockMode::kWrite);
    }
    EXPECT_EQ(objs.size(), s.size());
  }
  EXPECT_EQ(ids.size(), specs.size());  // ids unique
}

TEST(GeneratorTest, MixFractionRoughlyHolds) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{50, 1, db::Placement::kSingleSite}};
  auto cfg = base_config();
  cfg.transaction_count = 1000;
  cfg.read_only_fraction = 0.3;
  int read_only = 0;
  TransactionGenerator gen{k, schema, cfg, sim::RandomStream{3},
                           [&](txn::TransactionSpec s) {
                             if (s.read_only) ++read_only;
                           }};
  gen.start();
  k.run();
  EXPECT_NEAR(read_only / 1000.0, 0.3, 0.05);
}

TEST(GeneratorTest, InterarrivalMeanConverges) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{50, 1, db::Placement::kSingleSite}};
  auto cfg = base_config();
  cfg.transaction_count = 2000;
  sim::TimePoint last{};
  double sum = 0;
  int n = 0;
  TransactionGenerator gen{k, schema, cfg, sim::RandomStream{4},
                           [&](txn::TransactionSpec s) {
                             sum += (s.arrival - last).as_units();
                             last = s.arrival;
                             ++n;
                           }};
  gen.start();
  k.run();
  EXPECT_NEAR(sum / n, 10.0, 0.7);
}

TEST(GeneratorTest, HomeByWriteSetKeepsUpdatesLocal) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{30, 3, db::Placement::kFullyReplicated}};
  auto cfg = base_config();
  cfg.assignment = Assignment::kHomeByWriteSet;
  cfg.read_only_fraction = 0.5;
  cfg.transaction_count = 300;
  bool saw_all_sites[3] = {};
  TransactionGenerator gen{k, schema, cfg, sim::RandomStream{5},
                           [&](txn::TransactionSpec s) {
                             EXPECT_LT(s.home_site, 3u);
                             saw_all_sites[s.home_site] = true;
                             if (!s.read_only) {
                               for (const auto& op : s.access.operations()) {
                                 EXPECT_TRUE(schema.is_primary(s.home_site, op.object))
                                     << "update touches non-local primary";
                               }
                             }
                           }};
  gen.start();
  k.run();
  EXPECT_TRUE(saw_all_sites[0] && saw_all_sites[1] && saw_all_sites[2]);
}

TEST(GeneratorTest, UniformSiteSpreadsHomes) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{30, 3, db::Placement::kPartitioned}};
  auto cfg = base_config();
  cfg.assignment = Assignment::kUniformSite;
  cfg.transaction_count = 600;
  int per_site[3] = {};
  TransactionGenerator gen{k, schema, cfg, sim::RandomStream{6},
                           [&](txn::TransactionSpec s) { ++per_site[s.home_site]; }};
  gen.start();
  k.run();
  for (int c : per_site) EXPECT_NEAR(c, 200, 60);
}

TEST(GeneratorTest, PeriodicSourceReleasesOnSchedule) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{50, 1, db::Placement::kSingleSite}};
  auto cfg = base_config();
  cfg.transaction_count = 0;  // only the periodic source
  PeriodicSource source;
  source.period = Duration::units(20);
  source.phase = Duration::units(5);
  source.size = 3;
  source.read_only = true;
  cfg.periodic.push_back(source);
  std::vector<double> releases;
  TransactionGenerator gen{k, schema, cfg, sim::RandomStream{7},
                           [&](txn::TransactionSpec s) {
                             releases.push_back(s.arrival.as_units());
                             EXPECT_TRUE(s.read_only);
                             EXPECT_EQ(s.size(), 3u);
                             // Implicit deadline: next release.
                             EXPECT_EQ((s.deadline - s.arrival).as_units(), 20.0);
                           }};
  gen.start();
  k.run_until(sim::TimePoint::origin() + Duration::units(100));
  EXPECT_EQ(releases, (std::vector<double>{5, 25, 45, 65, 85}));
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto collect = [](std::uint64_t seed) {
    Kernel k;
    db::Database schema{db::DatabaseConfig{50, 1, db::Placement::kSingleSite}};
    std::vector<std::pair<std::int64_t, std::uint32_t>> sig;
    TransactionGenerator gen{k, schema, base_config(), sim::RandomStream{seed},
                             [&](txn::TransactionSpec s) {
                               sig.emplace_back(s.arrival.as_ticks(), s.size());
                             }};
    gen.start();
    k.run();
    return sig;
  };
  EXPECT_EQ(collect(42), collect(42));
  EXPECT_NE(collect(42), collect(43));
}

}  // namespace
}  // namespace rtdb::workload
