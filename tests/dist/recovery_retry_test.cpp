// RecoveryManager bounded retry: a catch-up round re-asks sites whose
// SyncReply never came (request or reply lost to an outage), up to
// Options::max_attempts tries, then stops so the run can drain.

#include <gtest/gtest.h>

#include <array>

#include "dist/recovery.hpp"
#include "sim/kernel.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Priority;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct Cluster {
  Kernel k;
  db::Database schema{db::DatabaseConfig{6, 2, db::Placement::kFullyReplicated}};
  net::Network net{k, 2, tu(5)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  sched::IoSubsystem io0{k}, io1{k};
  db::ResourceManager rm0{k, schema, 0, io0, Duration::zero()};
  db::ResourceManager rm1{k, schema, 1, io1, Duration::zero()};
  ReplicationManager rep0{ms0, rm0};
  ReplicationManager rep1{ms1, rm1};
  RecoveryManager rec0;
  RecoveryManager rec1;

  explicit Cluster(RecoveryManager::Options options)
      : rec0(ms0, rm0, options, nullptr), rec1(ms1, rm1, options, nullptr) {
    ms0.start();
    ms1.start();
  }

  // Commit one write at site 0 (object 0 is primary there) and propagate.
  Task<void> write_at_0(std::uint64_t txn) {
    const std::array<db::ObjectId, 1> objs{0};
    auto versions =
        co_await rm0.commit_writes(db::TxnId{txn}, objs, Priority::highest());
    rep0.propagate(objs, versions);
  }
};

TEST(RecoveryRetryTest, SilentSiteIsReAskedUntilItAnswers) {
  Cluster c{RecoveryManager::Options{3, tu(30)}};
  c.k.spawn("driver", [](Cluster& c) -> Task<void> {
    co_await c.write_at_0(1);
    co_await c.k.delay(tu(10));
    // Site 0 goes silent: the first request (t=10) and the first retry
    // (t=40) are both lost; it comes back before the second retry (t=70).
    c.net.set_operational(0, false);
    c.rec1.request_catch_up();
    co_await c.k.delay(tu(50));
    c.net.set_operational(0, true);
  }(c));
  c.k.run();
  EXPECT_EQ(c.rec1.sync_retries(), 2u);
  EXPECT_EQ(c.rec1.awaiting_replies(), 0u);  // the last retry got through
  EXPECT_EQ(c.rec0.sync_requests_served(), 1u);
  EXPECT_EQ(c.rm1.current(0).sequence, 1u);  // and recovered the version
}

TEST(RecoveryRetryTest, RetryBudgetIsBoundedSoTheRunDrains) {
  Cluster c{RecoveryManager::Options{3, tu(30)}};
  c.net.set_operational(0, false);  // down for good
  c.rec1.request_catch_up();
  c.k.run();  // drains: no timer is re-armed past the budget
  EXPECT_EQ(c.rec1.sync_retries(), 2u);  // max_attempts - 1 re-asks
  EXPECT_EQ(c.rec1.awaiting_replies(), 1u);
  EXPECT_EQ(c.rec0.sync_requests_served(), 0u);
}

TEST(RecoveryRetryTest, PromptReplyCancelsTheRetry) {
  Cluster c{RecoveryManager::Options{3, tu(30)}};
  c.k.spawn("driver", [](Cluster& c) -> Task<void> {
    co_await c.write_at_0(1);
    co_await c.k.delay(tu(10));
    c.rec1.request_catch_up();
    co_return;
  }(c));
  c.k.run();
  EXPECT_EQ(c.rec1.sync_retries(), 0u);
  EXPECT_EQ(c.rec1.awaiting_replies(), 0u);
  EXPECT_EQ(c.rec0.sync_requests_served(), 1u);
}

TEST(RecoveryRetryTest, DefaultOptionsReproduceFireAndForget) {
  Cluster c{RecoveryManager::Options{}};
  c.net.set_operational(0, false);
  c.rec1.request_catch_up();
  c.k.run();
  EXPECT_EQ(c.rec1.sync_retries(), 0u);  // one try, no timer
  EXPECT_EQ(c.rec1.awaiting_replies(), 1u);
}

}  // namespace
}  // namespace rtdb::dist
