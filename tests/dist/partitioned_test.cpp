// The partitioned ceiling scheme end-to-end: the object space sharded
// across per-shard ceiling managers, acquires routed to the owning shard,
// release/end fanned out per shard, and — under faults — each shard's
// manager failing over independently behind its own lease-fenced election.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

core::SystemConfig part_cfg(std::uint32_t sites = 4) {
  core::SystemConfig cfg;
  cfg.scheme = core::DistScheme::kPartitionedCeiling;
  cfg.sites = sites;
  cfg.db_objects = 20 * sites;
  cfg.cpu_per_object = tu(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = tu(1);
  cfg.workload.transaction_count = 30 * sites;
  cfg.workload.read_only_fraction = 0.25;
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = sim::Duration::from_units(18.0 / sites);
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = tu(3);
  cfg.seed = 2;
  return cfg;
}

TEST(PartitionedSchemeTest, FaultFreeRunCommitsAndDrainsClean) {
  core::SystemConfig cfg = part_cfg();
  cfg.conformance_check = true;
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_EQ(system.effective_shards(), 4u);
  const stats::Metrics m = system.metrics();
  EXPECT_EQ(m.arrived, cfg.workload.transaction_count);
  // The workload is deliberately contended (remote ceilings serialize
  // hard, as in the paper's global-scheme figures); the run must still
  // make real progress, not merely limp.
  EXPECT_GT(m.committed, cfg.workload.transaction_count / 5);
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
  ASSERT_NE(system.conformance(), nullptr);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
  // Every site routed every control message to a known shard.
  for (std::uint32_t id = 0; id < cfg.sites; ++id) {
    EXPECT_EQ(system.site(id).router->misrouted(), 0u) << "site " << id;
  }
}

TEST(PartitionedSchemeTest, ShardCountClampsToConfigAndSites) {
  {
    core::SystemConfig cfg = part_cfg(4);
    cfg.shards = 2;
    core::System system{cfg};
    EXPECT_EQ(system.effective_shards(), 2u);
  }
  {
    core::SystemConfig cfg = part_cfg(4);
    cfg.shards = 16;  // clamped: shard s's initial manager is site s
    core::System system{cfg};
    EXPECT_EQ(system.effective_shards(), 4u);
  }
}

TEST(PartitionedSchemeTest, RunsAreDeterministic) {
  const core::RunResult a = core::ExperimentRunner::run_once(part_cfg());
  const core::RunResult b = core::ExperimentRunner::run_once(part_cfg());
  EXPECT_EQ(a.metrics.committed, b.metrics.committed);
  EXPECT_EQ(a.metrics.missed, b.metrics.missed);
  EXPECT_DOUBLE_EQ(a.metrics.throughput_objects_per_sec,
                   b.metrics.throughput_objects_per_sec);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.protocol_aborts, b.protocol_aborts);
}

TEST(PartitionedSchemeTest, RangePartitionerAlsoDrainsClean) {
  core::SystemConfig cfg = part_cfg();
  cfg.partitioner = core::Partitioner::kRange;
  cfg.conformance_check = true;
  core::System system{cfg};
  system.run_to_completion();
  EXPECT_GT(system.metrics().committed, 0u);
  EXPECT_EQ(system.invariant_violations(), 0u);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
}

TEST(PartitionedSchemeTest, BatchingCoalescesControlTraffic) {
  core::SystemConfig cfg = part_cfg();
  cfg.batch_window = tu(1);
  core::System system{cfg};
  system.run_to_completion();
  EXPECT_GT(system.metrics().committed, 0u);
  EXPECT_GT(system.total_batched_messages(), 0u);
  EXPECT_GT(system.total_batch_flushes(), 0u);
  // Frames coalesce: strictly fewer flushes than payloads batched.
  EXPECT_LT(system.total_batch_flushes(), system.total_batched_messages());
  EXPECT_EQ(system.invariant_violations(), 0u);
}

TEST(PartitionedSchemeTest, ShardManagerCrashFailsOverThatShardOnly) {
  core::SystemConfig cfg = part_cfg();
  cfg.conformance_check = true;
  cfg.commit_vote_timeout = tu(40);
  // Site 1 hosts shard 1's initially active manager; kill it mid-run for
  // good. The other shards' managers (sites 0, 2, 3) stay where they are.
  cfg.faults.crashes.push_back(
      net::FaultSpec::Crash{1, tu(120), Duration::zero()});
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_EQ(system.crashes(), 1u);
  // Exactly shard 1's election promoted a successor.
  EXPECT_GE(system.total_shard_migrations(), 1u);
  // Work kept committing after the crash on the surviving sites.
  EXPECT_GT(system.metrics().committed, 0u);
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
}

TEST(PartitionedSchemeTest, BatchedChaosRunStaysClean) {
  // Batching, message loss, and a healed crash together: the coalesced
  // control plane must not break the shard failover or the audits.
  core::SystemConfig cfg = part_cfg();
  cfg.conformance_check = true;
  cfg.batch_window = tu(1);
  cfg.commit_vote_timeout = tu(40);
  cfg.faults.drop_rate = 0.01;
  cfg.faults.crashes.push_back(net::FaultSpec::Crash{1, tu(120), tu(150)});
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_GT(system.metrics().committed, 0u);
  EXPECT_GT(system.total_batched_messages(), 0u);
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
}

}  // namespace
}  // namespace rtdb::dist
