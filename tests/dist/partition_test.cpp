// Partition tolerance end-to-end: a scheduled link cut isolates the
// ceiling-manager site. The isolated manager loses quorum and fences (its
// lease expires strictly before the election window elapses), the majority
// elects a successor and keeps committing through the split, and after the
// heal the minority adopts the higher term — no double-manager window, no
// stale-term grant accepted, and a clean post-run audit.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

core::SystemConfig partition_cfg() {
  core::SystemConfig cfg;
  cfg.scheme = core::DistScheme::kGlobalCeiling;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = tu(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = tu(2);
  cfg.commit_vote_timeout = tu(8);
  cfg.workload.transaction_count = 150;
  cfg.workload.read_only_fraction = 0.4;
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = tu(5);
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = tu(3);
  cfg.seed = 4;
  // The manager site is cut off (symmetric) at t=150 and heals at t=450 —
  // long enough for the lease to expire and the majority to elect.
  cfg.faults.partitions.push_back(
      net::FaultSpec::Partition{{0}, tu(150), tu(300), true});
  return cfg;
}

int committed_between(core::System& system, Duration from, Duration until) {
  const sim::TimePoint lo = sim::TimePoint::origin() + from;
  const sim::TimePoint hi = sim::TimePoint::origin() + until;
  int n = 0;
  for (const stats::TxnRecord& rec : system.monitor().records()) {
    if (rec.committed && rec.finish > lo && rec.finish <= hi) ++n;
  }
  return n;
}

TEST(PartitionToleranceTest, MajoritySideElectsAndKeepsCommitting) {
  core::SystemConfig cfg = partition_cfg();
  cfg.conformance_check = true;  // lease audit shadows the whole run
  core::System system{cfg};
  system.run_to_completion();

  // The isolated manager's lease expired (it fenced itself)...
  EXPECT_GE(system.site(0).failover->lease_expiries(), 1u);
  // ...and the majority promoted the next site.
  EXPECT_GE(system.total_failovers(), 1u);
  EXPECT_EQ(system.site(1).failover->manager(), 1u);
  EXPECT_EQ(system.site(2).failover->manager(), 1u);
  // The majority side kept committing during the split.
  EXPECT_GT(committed_between(system, tu(150), tu(450)), 0);
  // Messages really were cut.
  EXPECT_GT(system.total_partition_drops(), 0u);
  // Post-heal, the minority adopted the higher term: every site agrees.
  EXPECT_EQ(system.site(0).failover->manager(), 1u);
  EXPECT_EQ(system.site(0).failover->term(), system.site(1).failover->term());
  EXPECT_FALSE(system.site(0).manager->active());
  // Audit-clean: no lease invariant violated, nothing leaked.
  ASSERT_NE(system.conformance(), nullptr);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
  EXPECT_EQ(system.monitor().processed() + system.monitor().shed(),
            system.monitor().records().size());
}

TEST(PartitionToleranceTest, LeaseFencesBeforeTheElectionWindowElapses) {
  // The fence-before-election argument, observed end-to-end: with default
  // timers the lease window (interval * (miss_threshold - 1)) is one full
  // beat inside the election window (interval * miss_threshold), so at no
  // point do two managers hold a live lease ("at most one lease per term"
  // is the audited invariant; this checks the stronger timing property via
  // the counters).
  core::SystemConfig cfg = partition_cfg();
  core::System system{cfg};
  system.run_to_completion();
  // Site 0 fenced at least once; it never granted under an expired lease,
  // so clients saw denials, not stale grants, from the minority side —
  // stale-term *responses* may still reach retried acquires after heal.
  EXPECT_GE(system.site(0).failover->lease_expiries(), 1u);
  EXPECT_GE(system.total_fence_denials(), 0u);
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
}

TEST(PartitionToleranceTest, PartitionedRunIsAPureFunctionOfTheSeed) {
  core::SystemConfig cfg = partition_cfg();
  cfg.faults.drop_rate = 0.05;  // combine partition with message faults
  const core::RunResult a = core::ExperimentRunner::run_once(cfg);
  const core::RunResult b = core::ExperimentRunner::run_once(cfg);
  EXPECT_EQ(a.metrics.committed, b.metrics.committed);
  EXPECT_EQ(a.metrics.missed, b.metrics.missed);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.partition_drops, b.partition_drops);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.lease_expiries, b.lease_expiries);
  EXPECT_EQ(a.stale_grants_rejected, b.stale_grants_rejected);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_GT(a.partition_drops, 0u);
  EXPECT_GE(a.lease_expiries, 1u);
  EXPECT_EQ(a.invariant_violations, 0u);
}

TEST(PartitionToleranceTest, AsymmetricCutIsCaughtByStaleTermRejection) {
  // Outbound-only cut: site 0 still hears the majority (its lease-quorum
  // view stays green — the fence cannot see a one-way cut) but nothing it
  // says gets out, so the majority elects anyway. The defense against the
  // fenceless twin is client-side: after the heal, responses stamped with
  // the old term are rejected, never acted on.
  core::SystemConfig cfg = partition_cfg();
  cfg.faults.partitions.clear();
  cfg.faults.partitions.push_back(
      net::FaultSpec::Partition{{0}, tu(150), tu(300), false});
  cfg.conformance_check = true;
  core::System system{cfg};
  system.run_to_completion();
  EXPECT_GE(system.total_failovers(), 1u);
  EXPECT_EQ(system.site(1).failover->manager(), 1u);
  ASSERT_NE(system.conformance(), nullptr);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
}

}  // namespace
}  // namespace rtdb::dist
