// End-to-end fault injection through core::System: scheduled site crashes
// driven by config (SystemConfig::faults) rather than by hand, exercising
// the kill / presumed-abort / replica-catch-up machinery together.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

core::SystemConfig dist_cfg(core::DistScheme scheme) {
  core::SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = tu(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = tu(2);
  cfg.workload.transaction_count = 150;
  cfg.workload.read_only_fraction = 0.3;
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = tu(5);
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = tu(3);
  cfg.seed = 4;
  return cfg;
}

TEST(SystemFaultTest, LocalSchemeCrashReplaysLostUpdatesViaRecovery) {
  core::SystemConfig cfg = dist_cfg(core::DistScheme::kLocalCeiling);
  // Site 2 fail-stops at 150tu and rejoins at 450tu; restore triggers a
  // replica catch-up automatically.
  cfg.faults.crashes.push_back(
      net::FaultSpec::Crash{2, tu(150), tu(300)});
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_EQ(system.crashes(), 1u);
  EXPECT_GT(system.total_crash_kills(), 0u);  // it had work in flight
  // Updates committed at sites 0/1 during the outage were lost at 2 and
  // replayed by the catch-up round.
  EXPECT_GT(system.total_versions_recovered(), 0u);
  // Every copy converged: the catch-up covers the outage, normal
  // propagation covers everything after it.
  for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
    const net::SiteId primary = system.schema().primary_site(o);
    EXPECT_EQ(system.site(2).rm->current(o),
              system.site(primary).rm->current(o))
        << "object " << o << " not recovered";
  }
  // Every transaction is accounted for even across the crash.
  EXPECT_EQ(system.monitor().processed(), system.monitor().records().size());
}

TEST(SystemFaultTest, GlobalSchemeCrashAbortsDeadSiteTransactions) {
  core::SystemConfig cfg = dist_cfg(core::DistScheme::kGlobalCeiling);
  // Short enough that a coordinator blocked on the dead site's vote reaches
  // the timeout before the deadline watchdog kills the whole transaction.
  cfg.commit_vote_timeout = tu(8);
  cfg.faults.crashes.push_back(
      net::FaultSpec::Crash{2, tu(150), tu(300)});
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_EQ(system.crashes(), 1u);
  EXPECT_GT(system.total_crash_kills(), 0u);
  // The global manager freed the dead site's locks (idealized failure
  // detection), so the survivors drained: nothing is left registered.
  ASSERT_NE(system.global_manager(), nullptr);
  EXPECT_EQ(system.global_manager()->live_mirrors(), 0u);
  // While site 2 was down its 2PC votes never arrived: replicated commits
  // at the surviving sites aborted on the vote timeout.
  EXPECT_GT(system.total_vote_timeouts(), 0u);
  EXPECT_EQ(system.monitor().processed(), system.monitor().records().size());
}

TEST(SystemFaultTest, FaultScheduleIsAPureFunctionOfTheSeed) {
  core::SystemConfig cfg = dist_cfg(core::DistScheme::kGlobalCeiling);
  cfg.commit_vote_timeout = tu(40);
  cfg.faults.drop_rate = 0.02;
  cfg.faults.dup_rate = 0.01;
  cfg.faults.jitter = tu(1);
  const core::RunResult a = core::ExperimentRunner::run_once(cfg);
  const core::RunResult b = core::ExperimentRunner::run_once(cfg);
  EXPECT_EQ(a.metrics.committed, b.metrics.committed);
  EXPECT_EQ(a.metrics.missed, b.metrics.missed);
  EXPECT_EQ(a.metrics.throughput_objects_per_sec,
            b.metrics.throughput_objects_per_sec);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.fault_dups, b.fault_dups);
  EXPECT_EQ(a.commit_aborts, b.commit_aborts);
  EXPECT_EQ(a.presumed_aborts, b.presumed_aborts);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_GT(a.fault_drops, 0u);  // the knobs actually did something
}

TEST(SystemFaultTest, ZeroFaultSpecIsBitIdenticalToBaseline) {
  core::SystemConfig cfg = dist_cfg(core::DistScheme::kGlobalCeiling);
  const core::RunResult baseline = core::ExperimentRunner::run_once(cfg);
  // An explicitly *installed* zero spec must not perturb anything: the
  // injector is never consulted, the fault stream never drawn from.
  cfg.faults.drop_rate = 0.0;
  cfg.faults.dup_rate = 0.0;
  cfg.faults.jitter = Duration::zero();
  const core::RunResult zero = core::ExperimentRunner::run_once(cfg);
  EXPECT_EQ(baseline.metrics.committed, zero.metrics.committed);
  EXPECT_EQ(baseline.metrics.missed, zero.metrics.missed);
  EXPECT_EQ(baseline.metrics.throughput_objects_per_sec,
            zero.metrics.throughput_objects_per_sec);
  EXPECT_EQ(baseline.restarts, zero.restarts);
  EXPECT_EQ(baseline.elapsed, zero.elapsed);
}

}  // namespace
}  // namespace rtdb::dist
