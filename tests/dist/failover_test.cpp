// Ceiling-manager failover end-to-end: the global scheme survives a crash
// of the manager site itself. Heartbeats detect the death, the next live
// site promotes itself, clients re-register their live transactions (the
// new manager adopts the locks they already hold), and the run completes
// with nonzero post-crash throughput and a clean invariant audit.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;

Duration tu(std::int64_t n) { return Duration::units(n); }

core::SystemConfig failover_cfg() {
  core::SystemConfig cfg;
  cfg.scheme = core::DistScheme::kGlobalCeiling;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = tu(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = tu(2);
  cfg.commit_vote_timeout = tu(8);
  cfg.workload.transaction_count = 150;
  cfg.workload.read_only_fraction = 0.3;
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = tu(5);
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = tu(3);
  cfg.seed = 4;
  // The scenario of the PR: 5% message loss and the *manager site* dying
  // mid-run, for good.
  cfg.faults.drop_rate = 0.05;
  cfg.faults.crashes.push_back(
      net::FaultSpec::Crash{0, tu(150), Duration::zero()});
  return cfg;
}

int committed_after(core::System& system, Duration at) {
  const sim::TimePoint cut = sim::TimePoint::origin() + at;
  int n = 0;
  for (const stats::TxnRecord& rec : system.monitor().records()) {
    if (rec.committed && rec.finish > cut) ++n;
  }
  return n;
}

TEST(FailoverTest, ManagerCrashFailsOverAndSurvivorsKeepCommitting) {
  core::SystemConfig cfg = failover_cfg();
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_EQ(system.crashes(), 1u);
  // Exactly one site promoted itself: the next live site by id.
  EXPECT_GE(system.total_failovers(), 1u);
  EXPECT_EQ(system.site(1).failover->manager(), 1u);
  EXPECT_EQ(system.site(2).failover->manager(), 1u);
  EXPECT_TRUE(system.site(1).manager->active());
  // The survivors kept committing after the manager died.
  EXPECT_GT(committed_after(system, tu(150)), 0);
  // And the end state audits clean: controllers quiescent, no mirror or
  // lock leaked anywhere, ceilings reset.
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
  // Every transaction is accounted for across the failover.
  EXPECT_EQ(system.monitor().processed(), system.monitor().records().size());
}

TEST(FailoverTest, FailoverOutperformsTheNoFailoverBaseline) {
  core::SystemConfig cfg = failover_cfg();
  const core::RunResult with = core::ExperimentRunner::run_once(cfg);
  cfg.enable_failover = false;
  const core::RunResult without = core::ExperimentRunner::run_once(cfg);
  EXPECT_GE(with.failovers, 1u);
  EXPECT_EQ(without.failovers, 0u);
  // Without a successor, everything submitted after the crash can only
  // miss its deadline; failover recovers most of that work.
  EXPECT_GT(with.metrics.committed, without.metrics.committed);
  EXPECT_EQ(with.invariant_violations, 0u);
  EXPECT_EQ(without.invariant_violations, 0u);
}

TEST(FailoverTest, RestoredManagerRejoinsAsStandby) {
  core::SystemConfig cfg = failover_cfg();
  cfg.faults.crashes.clear();
  cfg.faults.crashes.push_back(net::FaultSpec::Crash{0, tu(150), tu(200)});
  core::System system{cfg};
  system.run_to_completion();

  EXPECT_GE(system.total_failovers(), 1u);
  // The old manager came back, heard the newer term, and submitted to it:
  // every site agrees the manager is site 1, and site 0's instance stays
  // inactive.
  EXPECT_EQ(system.site(0).failover->manager(), 1u);
  EXPECT_FALSE(system.site(0).manager->active());
  EXPECT_TRUE(system.site(1).manager->active());
  std::string why;
  EXPECT_EQ(system.invariant_violations(&why), 0u) << why;
}

TEST(FailoverTest, FaultyFailoverRunIsAPureFunctionOfTheSeed) {
  const core::SystemConfig cfg = failover_cfg();
  const core::RunResult a = core::ExperimentRunner::run_once(cfg);
  const core::RunResult b = core::ExperimentRunner::run_once(cfg);
  EXPECT_EQ(a.metrics.committed, b.metrics.committed);
  EXPECT_EQ(a.metrics.missed, b.metrics.missed);
  EXPECT_EQ(a.metrics.throughput_objects_per_sec,
            b.metrics.throughput_objects_per_sec);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.backoff_wait_units, b.backoff_wait_units);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.termination_queries, b.termination_queries);
  EXPECT_EQ(a.termination_resolutions, b.termination_resolutions);
  EXPECT_EQ(a.orphan_locks_reclaimed, b.orphan_locks_reclaimed);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_GE(a.failovers, 1u);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_EQ(a.invariant_violations, 0u);
}

}  // namespace
}  // namespace rtdb::dist
