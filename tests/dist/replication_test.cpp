#include "dist/replication.hpp"

#include <gtest/gtest.h>

#include <array>

#include "sim/kernel.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Priority;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct Cluster {
  Kernel k;
  db::Database schema{db::DatabaseConfig{6, 3, db::Placement::kFullyReplicated}};
  net::Network net{k, 3, tu(5)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  net::MessageServer ms2{k, net, 2};
  sched::IoSubsystem io0{k}, io1{k}, io2{k};
  db::ResourceManager rm0{k, schema, 0, io0, Duration::zero()};
  db::ResourceManager rm1{k, schema, 1, io1, Duration::zero()};
  db::ResourceManager rm2{k, schema, 2, io2, Duration::zero()};
  ReplicationManager rep0{ms0, rm0};
  ReplicationManager rep1{ms1, rm1};
  ReplicationManager rep2{ms2, rm2};

  Cluster() {
    ms0.start();
    ms1.start();
    ms2.start();
  }
};

TEST(ReplicationTest, PropagatesToAllOtherSites) {
  Cluster c;
  // Object 0 is primary at site 0.
  c.k.spawn("writer", [](Cluster& c) -> Task<void> {
    const std::array<db::ObjectId, 1> objs{0};
    auto versions = co_await c.rm0.commit_writes(db::TxnId{1}, objs,
                                                 Priority::highest());
    c.rep0.propagate(objs, versions);
  }(c));
  c.k.run();
  EXPECT_EQ(c.rep0.updates_sent(), 2u);  // two other sites
  EXPECT_EQ(c.rm1.current(0).writer, db::TxnId{1});
  EXPECT_EQ(c.rm2.current(0).writer, db::TxnId{1});
  EXPECT_EQ(c.rep1.updates_applied(), 1u);
  EXPECT_EQ(c.rep2.updates_applied(), 1u);
}

TEST(ReplicationTest, LagEqualsCommunicationDelay) {
  Cluster c;
  c.k.spawn("writer", [](Cluster& c) -> Task<void> {
    co_await c.k.delay(Duration::units(7));
    const std::array<db::ObjectId, 1> objs{0};
    auto versions = co_await c.rm0.commit_writes(db::TxnId{1}, objs,
                                                 Priority::highest());
    c.rep0.propagate(objs, versions);
  }(c));
  c.k.run();
  // Commit at t=7, applied at t=12 (5tu link delay).
  EXPECT_EQ(c.rep1.mean_lag(), tu(5));
  EXPECT_EQ(c.rep1.max_lag(), tu(5));
}

TEST(ReplicationTest, SecondariesConvergeToPrimaryHistory) {
  Cluster c;
  c.k.spawn("writer", [](Cluster& c) -> Task<void> {
    const std::array<db::ObjectId, 1> objs{0};
    for (std::uint64_t i = 1; i <= 5; ++i) {
      auto versions = co_await c.rm0.commit_writes(db::TxnId{i}, objs,
                                                   Priority::highest());
      c.rep0.propagate(objs, versions);
      co_await c.k.delay(Duration::units(3));
    }
  }(c));
  c.k.run();
  EXPECT_EQ(c.rm1.current(0).sequence, 5u);
  EXPECT_EQ(c.rm1.current(0).writer, db::TxnId{5});
  EXPECT_EQ(c.rm2.current(0).sequence, 5u);
  EXPECT_EQ(c.rep1.updates_applied(), 5u);
  EXPECT_EQ(c.rep1.updates_stale(), 0u);
}

// During the propagation window, a reader at another site sees the old
// version — the temporal inconsistency the scheme deliberately accepts.
TEST(ReplicationTest, ReadersSeeHistoricalValueDuringWindow) {
  Cluster c;
  c.k.spawn("writer", [](Cluster& c) -> Task<void> {
    const std::array<db::ObjectId, 1> objs{0};
    auto versions = co_await c.rm0.commit_writes(db::TxnId{1}, objs,
                                                 Priority::highest());
    c.rep0.propagate(objs, versions);
  }(c));
  bool checked_stale = false;
  c.k.schedule_in(tu(2), [&] {
    EXPECT_EQ(c.rm1.current(0).sequence, 0u);  // still the old version
    checked_stale = true;
  });
  c.k.run();
  EXPECT_TRUE(checked_stale);
  EXPECT_EQ(c.rm1.current(0).sequence, 1u);  // converged afterwards
}

TEST(ReplicationTest, LostUpdateSupersededWithoutBlocking) {
  Cluster c;
  c.net.set_operational(1, false);  // site 1 misses the first update
  c.k.spawn("writer", [](Cluster& c) -> Task<void> {
    const std::array<db::ObjectId, 1> objs{0};
    auto v1 = co_await c.rm0.commit_writes(db::TxnId{1}, objs,
                                           Priority::highest());
    c.rep0.propagate(objs, v1);
    co_await c.k.delay(Duration::units(20));
    c.net.set_operational(1, true);
    auto v2 = co_await c.rm0.commit_writes(db::TxnId{2}, objs,
                                           Priority::highest());
    c.rep0.propagate(objs, v2);
  }(c));
  c.k.run();
  // Site 1 skipped sequence 1 but converges to sequence 2.
  EXPECT_EQ(c.rm1.current(0).sequence, 2u);
  EXPECT_EQ(c.rm2.current(0).sequence, 2u);
}

}  // namespace
}  // namespace rtdb::dist
