#include "dist/temporal_view.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/system.hpp"
#include "dist/replication.hpp"
#include "sim/kernel.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Task;
using sim::TimePoint;

Duration tu(std::int64_t n) { return Duration::units(n); }
TimePoint at(std::int64_t n) { return TimePoint::origin() + tu(n); }

db::Version v(std::uint64_t seq, std::uint64_t writer, std::int64_t when) {
  return db::Version{seq, db::TxnId{writer}, at(when)};
}

TEST(TemporalConsistencyOracleTest, SingletonAlwaysConsistent) {
  db::MultiVersionStore mv{2};
  mv.install(0, v(1, 1, 10));
  const std::array<db::ObjectId, 1> objs{0};
  const std::array<db::Version, 1> vs{mv.latest(0)};
  EXPECT_TRUE(TemporalView::mutually_consistent(mv, objs, vs));
}

TEST(TemporalConsistencyOracleTest, OverlappingWindowsConsistent) {
  db::MultiVersionStore mv{2};
  mv.install(0, v(1, 1, 10));  // current over [10, 30)
  mv.install(0, v(2, 2, 30));
  mv.install(1, v(1, 3, 20));  // current over [20, inf)
  const std::array<db::ObjectId, 2> objs{0, 1};
  // {0@seq1, 1@seq1} were both current during [20, 30): consistent.
  const std::array<db::Version, 2> good{v(1, 1, 10), v(1, 3, 20)};
  EXPECT_TRUE(TemporalView::mutually_consistent(mv, objs, good));
}

TEST(TemporalConsistencyOracleTest, DisjointWindowsInconsistent) {
  db::MultiVersionStore mv{2};
  mv.install(0, v(1, 1, 10));  // current over [10, 20)
  mv.install(0, v(2, 2, 20));
  mv.install(1, v(1, 3, 25));  // current over [25, inf)
  const std::array<db::ObjectId, 2> objs{0, 1};
  // 0@seq1 died at 20, 1@seq1 born at 25: never visible together.
  const std::array<db::Version, 2> bad{v(1, 1, 10), v(1, 3, 25)};
  EXPECT_FALSE(TemporalView::mutually_consistent(mv, objs, bad));
}

TEST(TemporalConsistencyOracleTest, UnknownVersionRejected) {
  db::MultiVersionStore mv{1};
  const std::array<db::ObjectId, 1> objs{0};
  const std::array<db::Version, 1> phantom{v(9, 9, 5)};
  EXPECT_FALSE(TemporalView::mutually_consistent(mv, objs, phantom));
}

// End-to-end: a replica site assembling views with the raw "latest" reads
// can observe an inconsistent cut during the propagation window, while the
// TemporalView (reading at now - lag bound) never does.
TEST(TemporalViewTest, SafeTimeReadsAreAlwaysConsistent) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{4, 2, db::Placement::kFullyReplicated}};
  net::Network net{k, 2};
  net.set_delay(0, 1, tu(4));
  net.set_delay(1, 0, tu(4));
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  sched::IoSubsystem io0{k}, io1{k};
  db::ResourceManager rm0{k, schema, 0, io0, Duration::zero(), true};
  db::ResourceManager rm1{k, schema, 1, io1, Duration::zero(), true};
  ReplicationManager rep0{ms0, rm0};
  ReplicationManager rep1{ms1, rm1};
  ms0.start();
  ms1.start();

  // Site 0 owns objects 0 and 2 (round-robin homing) and updates them
  // together repeatedly: the pair is the "consistent unit".
  k.spawn("writer", [](Kernel& k, db::ResourceManager& rm0,
                       ReplicationManager& rep0) -> Task<void> {
    const std::array<db::ObjectId, 2> objs{0, 2};
    for (std::uint64_t i = 1; i <= 6; ++i) {
      co_await k.delay(Duration::units(10));
      auto versions = co_await rm0.commit_writes(db::TxnId{i}, objs,
                                                 sim::Priority::highest());
      rep0.propagate(objs, versions);
    }
  }(k, rm0, rep0));

  // Site 1 probes both read styles at awkward instants (mid-propagation).
  TemporalView view{k, rm1, tu(4)};
  int naive_inconsistent = 0;
  int temporal_inconsistent = 0;
  const std::array<db::ObjectId, 2> objs{0, 2};
  for (int t = 11; t <= 70; t += 2) {
    k.schedule_in(tu(t), [&] {
      // Ground truth for both objects is the primary's (site 0's) history.
      const auto* truth = rm0.version_history();
      const std::array<db::Version, 2> naive{rm1.current(0), rm1.current(2)};
      if (!TemporalView::mutually_consistent(*truth, objs, naive)) {
        ++naive_inconsistent;
      }
      const auto snapshot = view.read_snapshot(objs);
      if (!TemporalView::mutually_consistent(*truth, objs, snapshot)) {
        ++temporal_inconsistent;
      }
    });
  }
  k.run();
  // The pair is written atomically at the primary and the link is FIFO,
  // so even naive reads stay pairwise consistent here — but the temporal
  // view must be consistent by construction, and its versions must lag.
  EXPECT_EQ(temporal_inconsistent, 0);
  EXPECT_GE(naive_inconsistent, 0);  // informational; see next test
}

// With the two objects of the view owned by *different* primaries, naive
// "latest" reads mix fresh and stale values during the window; the
// temporal view still never does.
TEST(TemporalViewTest, CrossPrimaryViewsNeedTheSafeTime) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{4, 2, db::Placement::kFullyReplicated}};
  net::Network net{k, 2};
  net.set_delay(0, 1, tu(6));
  net.set_delay(1, 0, tu(6));
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  sched::IoSubsystem io0{k}, io1{k};
  db::ResourceManager rm0{k, schema, 0, io0, Duration::zero(), true};
  db::ResourceManager rm1{k, schema, 1, io1, Duration::zero(), true};
  ReplicationManager rep0{ms0, rm0};
  ReplicationManager rep1{ms1, rm1};
  ms0.start();
  ms1.start();

  // Object 0 is primary at site 0, object 1 at site 1. Both are updated
  // every 10tu "in step" (same virtual instants, as coupled sensor values).
  k.spawn("w0", [](Kernel& k, db::ResourceManager& rm0,
                   ReplicationManager& rep0) -> Task<void> {
    const std::array<db::ObjectId, 1> objs{0};
    for (std::uint64_t i = 1; i <= 6; ++i) {
      co_await k.delay(Duration::units(10));
      auto versions = co_await rm0.commit_writes(db::TxnId{i * 2}, objs,
                                                 sim::Priority::highest());
      rep0.propagate(objs, versions);
    }
  }(k, rm0, rep0));
  k.spawn("w1", [](Kernel& k, db::ResourceManager& rm1,
                   ReplicationManager& rep1) -> Task<void> {
    const std::array<db::ObjectId, 1> objs{1};
    for (std::uint64_t i = 1; i <= 6; ++i) {
      co_await k.delay(Duration::units(10));
      auto versions = co_await rm1.commit_writes(db::TxnId{i * 2 + 1}, objs,
                                                 sim::Priority::highest());
      rep1.propagate(objs, versions);
    }
  }(k, rm1, rep1));

  // Observe from site 1: object 1 is always fresh locally, object 0 lags
  // by 6tu. Consistency is judged against the *global* history; build it
  // by merging both sites' (identical-per-object) version chains — site
  // 1's own history suffices for objects 0 and 1 once converged, but
  // mid-run its object-0 chain is shorter, so judge against site-0's
  // history for 0 and site-1's for 1 via a combined store.
  TemporalView view{k, rm1, tu(6)};
  int naive_inconsistent = 0;
  int temporal_inconsistent = 0;
  for (int t = 12; t <= 70; t += 3) {
    k.schedule_in(tu(t), [&] {
      // Judge against ground truth: the primaries' version chains (object
      // 0 at site 0, object 1 at site 1) — a lagging replica's own chain
      // cannot see a missing successor.
      const std::array<const db::MultiVersionStore*, 2> truth{
          rm0.version_history(), rm1.version_history()};
      const std::array<db::ObjectId, 2> objs{0, 1};
      const std::array<db::Version, 2> naive{rm1.current(0), rm1.current(1)};
      if (!TemporalView::mutually_consistent(truth, objs, naive)) {
        ++naive_inconsistent;
      }
      const auto snapshot = view.read_snapshot(objs);
      if (!TemporalView::mutually_consistent(truth, objs, snapshot)) {
        ++temporal_inconsistent;
      }
    });
  }
  k.run();
  EXPECT_GT(naive_inconsistent, 0)
      << "naive latest-value reads should mix epochs during propagation";
  EXPECT_EQ(temporal_inconsistent, 0);
}

TEST(TemporalViewTest, SafeTimeClampsToOrigin) {
  Kernel k;
  db::Database schema{db::DatabaseConfig{2, 1, db::Placement::kSingleSite}};
  sched::IoSubsystem io{k};
  db::ResourceManager rm{k, schema, 0, io, Duration::zero(), true};
  TemporalView view{k, rm, tu(100)};
  // now=0, lag bound 100: reads fall back to the initial versions.
  EXPECT_EQ(view.read(0).sequence, 0u);
}

}  // namespace
}  // namespace rtdb::dist
