#include "dist/recovery.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/system.hpp"
#include "sim/kernel.hpp"

namespace rtdb::dist {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Priority;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

struct Cluster {
  Kernel k;
  db::Database schema{db::DatabaseConfig{6, 2, db::Placement::kFullyReplicated}};
  net::Network net{k, 2, tu(5)};
  net::MessageServer ms0{k, net, 0};
  net::MessageServer ms1{k, net, 1};
  sched::IoSubsystem io0{k}, io1{k};
  db::ResourceManager rm0{k, schema, 0, io0, Duration::zero()};
  db::ResourceManager rm1{k, schema, 1, io1, Duration::zero()};
  ReplicationManager rep0{ms0, rm0};
  ReplicationManager rep1{ms1, rm1};
  RecoveryManager rec0{ms0, rm0};
  RecoveryManager rec1{ms1, rm1};

  Cluster() {
    ms0.start();
    ms1.start();
  }

  // Commit one write at site 0 (object 0 is primary there) and propagate.
  Task<void> write_at_0(std::uint64_t txn) {
    const std::array<db::ObjectId, 1> objs{0};
    auto versions =
        co_await rm0.commit_writes(db::TxnId{txn}, objs, Priority::highest());
    rep0.propagate(objs, versions);
  }
};

TEST(RecoveryTest, CatchUpRestoresUpdatesLostInOutage) {
  Cluster c;
  c.k.spawn("driver", [](Cluster& c) -> Task<void> {
    co_await c.write_at_0(1);  // delivered normally
    co_await c.k.delay(tu(10));
    c.net.set_operational(1, false);
    co_await c.write_at_0(2);  // lost: site 1 is down
    co_await c.write_at_0(3);  // lost
    co_await c.k.delay(tu(10));
    c.net.set_operational(1, true);
    // Without catch-up site 1 would stay at sequence 1 forever (object 0
    // is never written again). Recover:
    EXPECT_EQ(c.rm1.current(0).sequence, 1u);
    c.rec1.request_catch_up();
  }(c));
  c.k.run();
  EXPECT_EQ(c.rm1.current(0).sequence, 3u);
  EXPECT_EQ(c.rm1.current(0).writer, db::TxnId{3});
  EXPECT_EQ(c.rec1.catch_ups_started(), 1u);
  EXPECT_EQ(c.rec0.sync_requests_served(), 1u);
  EXPECT_EQ(c.rec1.versions_recovered(), 1u);  // one object was behind
}

TEST(RecoveryTest, CatchUpWithNothingMissingIsANoOp) {
  Cluster c;
  c.k.spawn("driver", [](Cluster& c) -> Task<void> {
    co_await c.write_at_0(1);
    co_await c.k.delay(tu(20));  // propagation done
    c.rec1.request_catch_up();
  }(c));
  c.k.run();
  EXPECT_EQ(c.rm1.current(0).sequence, 1u);
  EXPECT_EQ(c.rec1.versions_recovered(), 0u);  // nothing was newer
}

TEST(RecoveryTest, StaleSyncReplyNeverRegresses) {
  Cluster c;
  c.k.spawn("driver", [](Cluster& c) -> Task<void> {
    co_await c.write_at_0(1);
    // Request a sync whose reply (carrying sequence 1) will be in flight
    // while a newer update (sequence 2) also travels; whichever order they
    // land, the copy must end at 2.
    c.rec1.request_catch_up();
    co_await c.write_at_0(2);
  }(c));
  c.k.run();
  EXPECT_EQ(c.rm1.current(0).sequence, 2u);
}

TEST(RecoveryTest, SystemWiredRecoveryConvergesAfterOutage) {
  core::SystemConfig cfg;
  cfg.scheme = core::DistScheme::kLocalCeiling;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = tu(2);
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = tu(2);
  cfg.workload.transaction_count = 200;
  cfg.workload.read_only_fraction = 0.3;
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = tu(5);
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = tu(3);
  cfg.seed = 4;
  core::System system{cfg};
  system.start();
  system.kernel().run_until(sim::TimePoint::origin() + tu(150));
  system.network()->set_operational(2, false);
  system.kernel().run_until(sim::TimePoint::origin() + tu(500));
  system.network()->set_operational(2, true);
  system.kernel().run();  // drain the workload (updates may be lost at 2)
  system.site(2).recovery->request_catch_up();
  system.kernel().run();  // drain the sync round trip
  for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
    const net::SiteId primary = system.schema().primary_site(o);
    EXPECT_EQ(system.site(2).rm->current(o),
              system.site(primary).rm->current(o))
        << "object " << o << " not recovered";
  }
  EXPECT_GT(system.network()->messages_dropped(), 0u);
}

}  // namespace
}  // namespace rtdb::dist
