// Mutation fixtures for the lease audit: feed the observer the event
// stream a correct failover run produces (passes clean), then the streams
// of the two classic buggy twins — a fenceless manager that keeps granting
// after its lease expired, and a client that accepts a grant stamped with
// a term it already knows is expired — and assert the specific rule fires
// with a non-empty trace window.

#include <gtest/gtest.h>

#include "check/monitor.hpp"
#include "dist/lease.hpp"
#include "sim/kernel.hpp"

namespace rtdb::check {
namespace {

TEST(LeaseAuditTest, CleanFailoverLifecyclePasses) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  // Term 0: site 0 is born holding the lease and grants.
  audit->on_lease_acquired(0, 0);
  audit->on_lease_grant(0, 0);
  audit->on_grant_accepted(1, 0);
  // Partition: site 0 fences (lease expires), the majority elects site 1.
  audit->on_lease_released(0, 0);
  audit->on_term_adopted(1, 1);
  audit->on_lease_acquired(1, 1);
  audit->on_term_adopted(2, 1);
  audit->on_lease_grant(1, 1);
  audit->on_grant_accepted(2, 1);
  // Heal: the minority adopts the higher term.
  audit->on_term_adopted(0, 1);
  EXPECT_EQ(monitor.violations(), 0u) << monitor.format_reports();
}

TEST(LeaseAuditTest, FlagsFencelessManagerTwin) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  audit->on_lease_acquired(0, 0);
  audit->on_lease_grant(0, 0);
  audit->on_lease_released(0, 0);  // the lease expired (quorum lost)
  // Mutation: the fence failed — the manager keeps granting anyway.
  audit->on_lease_grant(0, 0);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lease.grant_without_lease");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(LeaseAuditTest, FlagsGrantStampedWithSomeoneElsesTerm) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  audit->on_lease_acquired(0, 0);
  audit->on_lease_acquired(1, 1);
  // Mutation: site 0 stamps a grant with the successor's term — it holds a
  // lease, but not for that term.
  audit->on_lease_grant(0, 1);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lease.grant_without_lease");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(LeaseAuditTest, FlagsTwoHoldersOfOneTerm) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  audit->on_lease_acquired(0, 5);
  // Mutation: split brain — a second site claims the same term's lease.
  audit->on_lease_acquired(1, 5);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lease.single_holder");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(LeaseAuditTest, ReacquiringYourOwnTermIsNotSplitBrain) {
  // Unfence after a transient quorum loss: same site, same term.
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  audit->on_lease_acquired(0, 0);
  audit->on_lease_released(0, 0);
  audit->on_lease_acquired(0, 0);
  audit->on_lease_grant(0, 0);
  EXPECT_EQ(monitor.violations(), 0u) << monitor.format_reports();
}

TEST(LeaseAuditTest, FlagsStaleTermAcceptingClientTwin) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  audit->on_lease_acquired(0, 0);
  audit->on_term_adopted(2, 1);  // site 2's failover adopted the election
  // Mutation: its client still acts on a term-0 grant (the rejection
  // check was dropped).
  audit->on_lease_grant(0, 0);
  audit->on_grant_accepted(2, 0);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lease.stale_term_grant");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(LeaseAuditTest, StaleEmissionBeforeAdoptionIsLegal) {
  // The asymmetric-partition window: the old manager still holds its lease
  // (its inbound view is green) and grants with term 0 after the majority
  // elected term 1. Emission is not the violation — and neither is a
  // not-yet-informed site acting on it. Only acceptance *after* adoption
  // (previous test) trips the rule.
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* audit = monitor.lease_observer();
  audit->on_lease_acquired(0, 0);
  audit->on_term_adopted(1, 1);
  audit->on_lease_acquired(1, 1);
  audit->on_lease_grant(0, 0);     // emitted under its own live lease
  audit->on_grant_accepted(0, 0);  // site 0 has not adopted term 1 yet
  EXPECT_EQ(monitor.violations(), 0u) << monitor.format_reports();
}

}  // namespace
}  // namespace rtdb::check
