#include "check/tso_audit.hpp"

#include <gtest/gtest.h>

#include "check/monitor.hpp"
#include "sim/kernel.hpp"

namespace rtdb::check {
namespace {

using cc::LockMode;

cc::CcTxn make_txn(std::uint64_t id, std::uint32_t attempt = 1) {
  cc::CcTxn txn;
  txn.id = db::TxnId{id};
  txn.attempt = attempt;
  return txn;
}

TEST(TsoAuditTest, CleanSequencePasses) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  TsoAudit audit{monitor};
  cc::CcTxn t1 = make_txn(1);
  cc::CcTxn t2 = make_txn(2);
  audit.on_txn_begin(t1);
  audit.on_tso_access(t1, 10, LockMode::kRead, 5, true);
  audit.on_tso_access(t1, 10, LockMode::kWrite, 5, true);
  audit.on_txn_end(t1);
  audit.on_txn_begin(t2);
  // A reader older than the installed write must be rejected — and is.
  audit.on_tso_access(t2, 10, LockMode::kRead, 4, false);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(TsoAuditTest, FlagsAcceptedStaleWrite) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  TsoAudit audit{monitor};
  cc::CcTxn t1 = make_txn(1);
  cc::CcTxn t2 = make_txn(2);
  audit.on_txn_begin(t1);
  audit.on_tso_access(t1, 10, LockMode::kRead, 10, true);
  audit.on_txn_begin(t2);
  // Mutation: a write behind the object's read timestamp slips through.
  audit.on_tso_access(t2, 10, LockMode::kWrite, 5, true);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "tso.order");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(TsoAuditTest, FlagsRejectionOfLegalAccess) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  TsoAudit audit{monitor};
  cc::CcTxn t1 = make_txn(1);
  audit.on_txn_begin(t1);
  // Mutation: nothing conflicts, yet the broken twin rejects.
  audit.on_tso_access(t1, 10, LockMode::kRead, 5, false);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "tso.order");
}

TEST(TsoAuditTest, FlagsStaleRestartTimestamp) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  TsoAudit audit{monitor};
  cc::CcTxn first = make_txn(1, 1);
  audit.on_txn_begin(first);
  audit.on_tso_access(first, 10, LockMode::kRead, 7, true);
  cc::CcTxn retry = make_txn(1, 2);
  audit.on_txn_begin(retry);
  // Mutation: the restarted attempt reuses its old timestamp — the
  // rejected-reader livelock the fresh-timestamp rule exists to prevent.
  audit.on_tso_access(retry, 10, LockMode::kRead, 7, true);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "tso.stale_timestamp");
}

TEST(TsoAuditTest, FreshRestartTimestampPasses) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  TsoAudit audit{monitor};
  cc::CcTxn first = make_txn(1, 1);
  audit.on_txn_begin(first);
  audit.on_tso_access(first, 10, LockMode::kRead, 7, true);
  cc::CcTxn retry = make_txn(1, 2);
  audit.on_txn_begin(retry);
  audit.on_tso_access(retry, 10, LockMode::kRead, 8, true);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(TsoAuditTest, FlagsMidAttemptTimestampDrift) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  TsoAudit audit{monitor};
  cc::CcTxn t1 = make_txn(1);
  audit.on_txn_begin(t1);
  audit.on_tso_access(t1, 10, LockMode::kRead, 5, true);
  // Mutation: one attempt, two timestamps.
  audit.on_tso_access(t1, 11, LockMode::kRead, 6, true);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "tso.timestamp_drift");
}

}  // namespace
}  // namespace rtdb::check
