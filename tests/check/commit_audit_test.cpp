#include <gtest/gtest.h>

#include <vector>

#include "check/monitor.hpp"
#include "sim/kernel.hpp"
#include "txn/commit_observer.hpp"

namespace rtdb::check {
namespace {

using txn::DecisionSource;

db::TxnId txn1() { return db::TxnId{7}; }

std::span<const net::SiteId> sites(const std::vector<net::SiteId>& v) {
  return v;
}

TEST(CommitAuditTest, CleanUnanimousCommitPasses) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  const std::vector<net::SiteId> participants{1, 2};
  audit->on_round(txn1(), 1, 0, sites(participants));
  audit->on_vote(txn1(), 1, 1, true);
  audit->on_vote(txn1(), 1, 2, true);
  audit->on_decision(txn1(), 1, true);
  audit->on_apply(txn1(), 1, 1, true, DecisionSource::kDecision);
  audit->on_apply(txn1(), 1, 2, true, DecisionSource::kDecision);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(CommitAuditTest, FlagsCommitOverStandingNoVote) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  const std::vector<net::SiteId> participants{1, 2};
  audit->on_round(txn1(), 1, 0, sites(participants));
  audit->on_vote(txn1(), 1, 1, true);
  audit->on_vote(txn1(), 1, 2, false);
  // Mutation: the coordinator commits anyway.
  audit->on_decision(txn1(), 1, true);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "2pc.commit_without_quorum");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(CommitAuditTest, AllowsRevoteAfterDuplicatedPrepare) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  const std::vector<net::SiteId> participants{1, 2};
  audit->on_round(txn1(), 1, 0, sites(participants));
  // Site 2 first answers no (not yet prepared), then yes on the
  // retransmitted prepare; only a *standing* no contradicts a commit.
  audit->on_vote(txn1(), 1, 2, false);
  audit->on_vote(txn1(), 1, 1, true);
  audit->on_vote(txn1(), 1, 2, true);
  audit->on_decision(txn1(), 1, true);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(CommitAuditTest, FlagsSecondCommittingEpoch) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  const std::vector<net::SiteId> participants{1};
  audit->on_round(txn1(), 1, 0, sites(participants));
  audit->on_vote(txn1(), 1, 1, true);
  audit->on_decision(txn1(), 1, true);
  // Mutation: a restarted round commits the same transaction again.
  audit->on_round(txn1(), 2, 0, sites(participants));
  audit->on_vote(txn1(), 2, 1, true);
  audit->on_decision(txn1(), 2, true);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "2pc.double_commit");
}

TEST(CommitAuditTest, FlagsConflictingRedecision) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  audit->on_decision(txn1(), 1, false);
  audit->on_decision(txn1(), 1, true);  // mutation: same epoch, flipped
  ASSERT_GE(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "2pc.decision_conflict");
}

TEST(CommitAuditTest, FlagsApplyAgainstDecision) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  const std::vector<net::SiteId> participants{1};
  audit->on_round(txn1(), 1, 0, sites(participants));
  audit->on_vote(txn1(), 1, 1, false);
  audit->on_decision(txn1(), 1, false);
  // Mutation: the participant applies commit for an aborted epoch.
  audit->on_apply(txn1(), 1, 1, true, DecisionSource::kDecision);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "2pc.apply_mismatch");
}

TEST(CommitAuditTest, FlagsCommitWithNoRecordedDecision) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  // Mutation: a peer's termination answer manufactures a commit no
  // coordinator ever decided.
  audit->on_apply(txn1(), 1, 1, true, DecisionSource::kInfo);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "2pc.apply_untraceable");
}

TEST(CommitAuditTest, PresumedAbortAndInfoAbortNeverFlagged) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  txn::CommitObserver* audit = monitor.commit_observer();
  // Presumed abort is a deliberate guess; an abort answer for a round the
  // coordinator never decided is the legal superseded-epoch case.
  audit->on_apply(txn1(), 1, 1, false, DecisionSource::kPresumed);
  audit->on_apply(txn1(), 2, 1, false, DecisionSource::kInfo);
  EXPECT_EQ(monitor.violations(), 0u);
}

}  // namespace
}  // namespace rtdb::check
