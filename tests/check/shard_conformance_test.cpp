// Mutation fixtures for the partitioned scheme's conformance checks. Two
// buggy twins, each one mutated event away from a legal trace:
//
//  * wrong-shard grant — a shard manager hands out a lock on an object its
//    shard does not own (a router/partitioner mismatch); the shard-scope
//    audit must flag it even though the grant is perfectly legal by the
//    ceiling rules themselves;
//  * per-shard lease-fencing violation — within one shard's election a
//    fenced manager keeps granting / two sites hold the same term; the
//    per-shard lease audits must flag it, while the same term numbers
//    appearing in *different* shards stay legal (independent term spaces).

#include <gtest/gtest.h>

#include "cc/controller.hpp"
#include "check/monitor.hpp"
#include "check/shard_audit.hpp"
#include "core/config.hpp"
#include "sim/kernel.hpp"

namespace rtdb::check {
namespace {

using cc::LockMode;

cc::CcTxn make_txn(std::uint64_t id, std::int64_t prio_key) {
  cc::CcTxn txn;
  txn.id = db::TxnId{id};
  txn.attempt = 1;
  txn.base_priority = sim::Priority{prio_key, static_cast<std::uint32_t>(id)};
  return txn;
}

// The shard-ownership predicate the System wires in: core::shard_of bound
// to a 2-shard range partition over 20 objects (shard 0: 0-9, shard 1:
// 10-19).
auto in_shard(std::uint32_t shard) {
  return [shard](db::ObjectId object) {
    return core::shard_of(object, 20, 2, core::Partitioner::kRange) == shard;
  };
}

TEST(ShardScopeAuditTest, InScopeGrantsPassAndForwardToTheFamilyAudit) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  ShardScopeAudit audit{monitor, ProtocolFamily::kCeiling, 1, in_shard(1)};
  cc::CcTxn t1 = make_txn(1, 5);
  audit.on_txn_begin(t1);
  audit.on_grant(t1, 12, LockMode::kWrite);  // object 12 lives at shard 1
  audit.on_release_all(t1);
  audit.on_txn_end(t1);
  EXPECT_EQ(monitor.violations(), 0u) << monitor.format_reports();
}

TEST(ShardScopeAuditTest, FlagsWrongShardGrantTwin) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  ShardScopeAudit audit{monitor, ProtocolFamily::kCeiling, 1, in_shard(1)};
  cc::CcTxn t1 = make_txn(1, 5);
  audit.on_txn_begin(t1);
  // Mutation: shard 1's manager grants object 3, which shard 0 owns — the
  // grant is legal ceiling-wise, so only the scope check can catch it.
  audit.on_grant(t1, 3, LockMode::kWrite);
  ASSERT_GE(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "shard.wrong_shard_grant");
}

TEST(ShardScopeAuditTest, FlagsWrongShardAdoptionTwin) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  ShardScopeAudit audit{monitor, ProtocolFamily::kCeiling, 0, in_shard(0)};
  cc::CcTxn t1 = make_txn(1, 5);
  audit.on_txn_begin(t1);
  // Mutation: a failover re-registration makes shard 0's successor adopt a
  // held lock on shard 1's object.
  audit.on_adopt(t1, 15, LockMode::kWrite);
  ASSERT_GE(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "shard.wrong_shard_grant");
}

TEST(ShardLeaseAuditTest, IndependentTermSpacesPerShardAreLegal) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  // Shard 0's election: site 0 holds term 0. Shard 1's election: site 1
  // holds term 0 too. Same term number, different shards — two observers,
  // no split brain.
  dist::LeaseObserver* shard0 = monitor.lease_observer(0);
  dist::LeaseObserver* shard1 = monitor.lease_observer(1);
  shard0->on_lease_acquired(0, 0);
  shard0->on_lease_grant(0, 0);
  shard1->on_lease_acquired(1, 0);
  shard1->on_lease_grant(1, 0);
  EXPECT_EQ(monitor.violations(), 0u) << monitor.format_reports();
  // The per-shard observers are stable across lookups.
  EXPECT_EQ(monitor.lease_observer(0), shard0);
  EXPECT_EQ(monitor.lease_observer(1), shard1);
}

TEST(ShardLeaseAuditTest, FlagsFencelessShardManagerTwin) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* shard1 = monitor.lease_observer(1);
  shard1->on_lease_acquired(1, 0);
  shard1->on_lease_grant(1, 0);
  shard1->on_lease_released(1, 0);  // shard 1's lease expired
  // Mutation: the fence failed — shard 1's manager keeps granting.
  shard1->on_lease_grant(1, 0);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lease.grant_without_lease");
}

TEST(ShardLeaseAuditTest, FlagsSplitBrainWithinOneShard) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  dist::LeaseObserver* shard0 = monitor.lease_observer(0);
  shard0->on_lease_acquired(0, 3);
  // Mutation: a second site claims the same shard's term 3.
  shard0->on_lease_acquired(2, 3);
  ASSERT_GE(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lease.single_holder");
}

}  // namespace
}  // namespace rtdb::check
