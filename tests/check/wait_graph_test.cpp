#include "check/wait_graph.hpp"

#include <gtest/gtest.h>

namespace rtdb::check {
namespace {

TEST(WaitGraphTest, NoCycleOnChains) {
  WaitGraph g;
  EXPECT_FALSE(g.set_edges(1, {2}));
  EXPECT_FALSE(g.set_edges(2, {3}));
  EXPECT_FALSE(g.set_edges(3, {}));
}

TEST(WaitGraphTest, DetectsDirectAndTransitiveCycles) {
  WaitGraph g;
  EXPECT_FALSE(g.set_edges(1, {2}));
  EXPECT_TRUE(g.set_edges(2, {1}));
  WaitGraph h;
  EXPECT_FALSE(h.set_edges(1, {2}));
  EXPECT_FALSE(h.set_edges(2, {3}));
  EXPECT_TRUE(h.set_edges(3, {1}));
  EXPECT_FALSE(h.last_cycle().empty());
}

TEST(WaitGraphTest, ReblockingReplacesEdges) {
  WaitGraph g;
  EXPECT_FALSE(g.set_edges(1, {2}));
  // Waiter 1 wakes and blocks again on someone else; the old edge is gone,
  // so the would-be cycle through 2 no longer exists.
  EXPECT_FALSE(g.set_edges(1, {3}));
  EXPECT_FALSE(g.set_edges(2, {1}));
  EXPECT_TRUE(g.set_edges(3, {1}));
}

TEST(WaitGraphTest, ClearAndRemoveDropEdges) {
  WaitGraph g;
  EXPECT_FALSE(g.set_edges(1, {2}));
  // 1's wait ended: 2 can now wait for 1 without closing anything.
  g.clear_waiter(1);
  EXPECT_FALSE(g.set_edges(2, {1}));
  // 2 finished entirely: its edge to 1 is gone too.
  g.remove(2);
  EXPECT_FALSE(g.set_edges(1, {2}));
}

TEST(WaitGraphTest, SelfEdgesIgnored) {
  WaitGraph g;
  EXPECT_FALSE(g.set_edges(1, {1, 2}));
}

}  // namespace
}  // namespace rtdb::check
