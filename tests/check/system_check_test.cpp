#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hpp"
#include "core/system.hpp"

// The acceptance half of the mutation-style suite: the *shipped* protocol
// implementations, run end to end with the conformance monitor attached,
// must produce zero violations — and attaching the monitor must not change
// a single observable result (pure observation).

namespace rtdb::core {
namespace {

using sim::Duration;

SystemConfig small_single_site(Protocol protocol, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.db_objects = 40;
  cfg.workload.size_min = 2;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = Duration::units(20);
  cfg.workload.transaction_count = 120;
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = Duration::units(4);
  cfg.workload.read_only_fraction = 0.3;
  cfg.seed = seed;
  return cfg;
}

SystemConfig distributed(DistScheme scheme, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.io_per_object = Duration::zero();
  cfg.comm_delay = Duration::units(1);
  cfg.workload.size_min = 3;
  cfg.workload.size_max = 6;
  cfg.workload.mean_interarrival = Duration::units(15);
  cfg.workload.transaction_count = 100;
  cfg.workload.slack_min = 10;
  cfg.workload.slack_max = 20;
  cfg.workload.est_time_per_object = Duration::units(3);
  cfg.workload.read_only_fraction = 0.5;
  cfg.seed = seed;
  return cfg;
}

class ProtocolConformance
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(ProtocolConformance, ShippedProtocolAuditsClean) {
  const auto [protocol, seed] = GetParam();
  SystemConfig cfg = small_single_site(protocol, seed);
  cfg.conformance_check = true;
  System system{cfg};
  system.run_to_completion();
  ASSERT_NE(system.conformance(), nullptr);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolConformance,
    ::testing::Combine(
        ::testing::Values(Protocol::kTwoPhase, Protocol::kTwoPhasePriority,
                          Protocol::kPriorityCeiling,
                          Protocol::kPriorityCeilingExclusive,
                          Protocol::kPriorityInheritance,
                          Protocol::kHighPriority,
                          Protocol::kTimestampOrdering, Protocol::kWaitDie,
                          Protocol::kWoundWait),
        ::testing::Values(1u, 2u)));

class SchemeConformance
    : public ::testing::TestWithParam<std::tuple<DistScheme, std::uint64_t>> {};

TEST_P(SchemeConformance, DistributedSchemesAuditClean) {
  const auto [scheme, seed] = GetParam();
  SystemConfig cfg = distributed(scheme, seed);
  cfg.conformance_check = true;
  System system{cfg};
  system.run_to_completion();
  ASSERT_NE(system.conformance(), nullptr);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, SchemeConformance,
    ::testing::Combine(::testing::Values(DistScheme::kGlobalCeiling,
                                         DistScheme::kLocalCeiling),
                       ::testing::Values(1u, 2u)));

TEST(SystemCheckTest, FaultySweepAuditsClean) {
  // Crash + message loss exercises failover adoption, retransmission-driven
  // duplicate votes, presumed aborts, and cooperative termination — the
  // paths the 2PC and adoption rules exist for.
  SystemConfig cfg = distributed(DistScheme::kGlobalCeiling, 3);
  cfg.conformance_check = true;
  cfg.faults.drop_rate = 0.05;
  cfg.faults.dup_rate = 0.05;
  cfg.faults.crashes.push_back(
      {1, Duration::units(300), Duration::units(400)});
  System system{cfg};
  system.run_to_completion();
  ASSERT_NE(system.conformance(), nullptr);
  EXPECT_EQ(system.conformance()->violations(), 0u)
      << system.conformance()->format_reports();
}

TEST(SystemCheckTest, MonitorIsPureObservation) {
  // Same config, checker on vs off: every run scalar must be identical
  // (the conformance columns themselves aside, which are 0 when off).
  for (const Protocol protocol :
       {Protocol::kPriorityCeiling, Protocol::kHighPriority,
        Protocol::kTimestampOrdering}) {
    SystemConfig off = small_single_site(protocol, 5);
    SystemConfig on = off;
    on.conformance_check = true;
    off.conformance_check = false;
    const RunResult plain = ExperimentRunner::run_once(off);
    const RunResult audited = ExperimentRunner::run_once(on);
    for (const RunScalar& scalar : run_scalars()) {
      if (std::string_view{scalar.name}.starts_with("conformance") ||
          std::string_view{scalar.name}.starts_with("wait_cycles") ||
          std::string_view{scalar.name}.starts_with("max_inversion") ||
          std::string_view{scalar.name}.starts_with("observed_max_blocking") ||
          std::string_view{scalar.name}.starts_with("bound_violations")) {
        continue;
      }
      EXPECT_EQ(scalar.extract(plain), scalar.extract(audited))
          << to_string(protocol) << ": scalar " << scalar.name
          << " changed when the monitor attached";
    }
  }
}

TEST(SystemCheckTest, DisabledMonitorIsNeverConstructed) {
  SystemConfig cfg = small_single_site(Protocol::kTwoPhase, 1);
  cfg.conformance_check = false;
  System system{cfg};
  EXPECT_EQ(system.conformance(), nullptr);
}

}  // namespace
}  // namespace rtdb::core
