#include "check/lock_audit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cc/access_set.hpp"
#include "check/monitor.hpp"
#include "sim/kernel.hpp"

// Mutation-style fixtures: the audits are driven with hand-built event
// streams — the shipped protocols' legal traces must pass untouched, and a
// "broken twin" stream (one mutated event: a grant past release_all, a
// second writer, a wait against the age order) must be flagged with a
// non-empty trace window.

namespace rtdb::check {
namespace {

using cc::LockMode;

cc::CcTxn make_txn(std::uint64_t id, std::int64_t prio_key,
                   std::uint32_t attempt = 1) {
  cc::CcTxn txn;
  txn.id = db::TxnId{id};
  txn.attempt = attempt;
  txn.base_priority = sim::Priority{prio_key, static_cast<std::uint32_t>(id)};
  return txn;
}

std::span<cc::CcTxn* const> blockers(std::vector<cc::CcTxn*>& v) { return v; }

TEST(LockAuditTest, CleanTwoPhaseRunPasses) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 7);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kRead);
  audit.on_grant(t2, 10, LockMode::kRead);  // read-read sharing is legal
  audit.on_grant(t1, 11, LockMode::kWrite);
  audit.on_release_all(t1);
  audit.on_txn_end(t1);
  audit.on_grant(t2, 11, LockMode::kWrite);  // free after t1's release
  audit.on_release_all(t2);
  audit.on_txn_end(t2);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.wait_cycles_detected(), 0u);
}

TEST(LockAuditTest, FlagsGrantAfterReleaseAll) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  audit.on_txn_begin(t1);
  audit.on_grant(t1, 10, LockMode::kWrite);
  audit.on_release_all(t1);
  audit.on_grant(t1, 11, LockMode::kWrite);  // mutation: shrink then grow
  ASSERT_EQ(monitor.violations(), 1u);
  ASSERT_EQ(monitor.reports().size(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lock.two_phase");
  EXPECT_FALSE(monitor.reports()[0].trace.empty())
      << "a violation must carry its trace window";
}

TEST(LockAuditTest, FlagsSecondWriterOnObject) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kHighPriority};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 3);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  audit.on_grant(t2, 10, LockMode::kWrite);  // mutation: wound skipped
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lock.conflict");
}

TEST(LockAuditTest, FlagsReaderUnderWriter) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 3);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  audit.on_grant(t2, 10, LockMode::kRead);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lock.conflict");
}

TEST(LockAuditTest, FlagsDoubleOwnerAdoption) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kCeiling};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 3);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  // Mutation: failover reconstruction hands the same lock to a second
  // owner ("orphan-lock adoption leaves no double owner").
  audit.on_adopt(t2, 10, LockMode::kWrite);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "lock.conflict");
  EXPECT_NE(monitor.reports()[0].detail.find("adopted"), std::string::npos);
}

TEST(LockAuditTest, WaitDieAgeOrientation) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kWaitDie};
  cc::CcTxn older = make_txn(1, 5);
  cc::CcTxn younger = make_txn(2, 3);
  audit.on_txn_begin(older);
  audit.on_txn_begin(younger);
  // Legal: the older transaction waits behind the younger one.
  std::vector<cc::CcTxn*> behind_younger{&younger};
  audit.on_block(older, 10, LockMode::kWrite, blockers(behind_younger));
  audit.on_unblock(older);
  EXPECT_EQ(monitor.violations(), 0u);
  // Mutation: the younger one waits where wait-die says it must die.
  std::vector<cc::CcTxn*> behind_older{&older};
  audit.on_block(younger, 10, LockMode::kWrite, blockers(behind_older));
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "wait_die.age_order");
}

TEST(LockAuditTest, WoundWaitAgeOrientation) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kWoundWait};
  cc::CcTxn older = make_txn(1, 5);
  cc::CcTxn younger = make_txn(2, 3);
  audit.on_txn_begin(older);
  audit.on_txn_begin(younger);
  // Legal: the younger transaction waits behind the older one.
  std::vector<cc::CcTxn*> behind_older{&older};
  audit.on_block(younger, 10, LockMode::kWrite, blockers(behind_older));
  audit.on_unblock(younger);
  EXPECT_EQ(monitor.violations(), 0u);
  // Mutation: the older one waits where wound-wait says it must wound.
  std::vector<cc::CcTxn*> behind_younger{&younger};
  audit.on_block(older, 10, LockMode::kWrite, blockers(behind_younger));
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "wound_wait.age_order");
}

TEST(LockAuditTest, WaitCycleIsViolationForAgeProtocols) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kWaitDie};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 3);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  std::vector<cc::CcTxn*> b2{&t2};
  audit.on_block(t1, 10, LockMode::kWrite, blockers(b2));
  std::vector<cc::CcTxn*> b1{&t1};
  audit.on_block(t2, 11, LockMode::kWrite, blockers(b1));
  EXPECT_EQ(monitor.wait_cycles_detected(), 1u);
  bool cycle_flagged = false;
  for (const Violation& v : monitor.reports()) {
    if (v.rule == "age.wait_cycle") cycle_flagged = true;
  }
  EXPECT_TRUE(cycle_flagged)
      << "a closed cycle under an age-ordered protocol is a bug";
}

TEST(LockAuditTest, WaitCycleOnlyCountedForTwoPhase) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 3);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  std::vector<cc::CcTxn*> b2{&t2};
  audit.on_block(t1, 10, LockMode::kWrite, blockers(b2));
  std::vector<cc::CcTxn*> b1{&t1};
  audit.on_block(t2, 11, LockMode::kWrite, blockers(b1));
  EXPECT_EQ(monitor.wait_cycles_detected(), 1u);
  EXPECT_EQ(monitor.violations(), 0u)
      << "2PL resolves deadlocks via its detector; a cycle is a statistic";
}

TEST(LockAuditTest, MeasuresInversionSpan) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn high = make_txn(1, 1);
  cc::CcTxn low = make_txn(2, 50);
  audit.on_txn_begin(low);
  audit.on_txn_begin(high);
  audit.on_grant(low, 10, LockMode::kWrite);
  std::vector<cc::CcTxn*> b{&low};
  audit.on_block(high, 10, LockMode::kWrite, blockers(b));
  k.run_for(sim::Duration::units(7));
  audit.on_unblock(high);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_DOUBLE_EQ(monitor.max_inversion_span_units(), 7.0);
}

// ---- ceiling family: exact replay of the PCP grant rule ----

cc::CcTxn ceiling_txn(std::uint64_t id, std::int64_t prio_key,
                      std::vector<cc::Operation> declared) {
  cc::CcTxn txn = make_txn(id, prio_key);
  txn.access = cc::AccessSet::from_operations(std::move(declared));
  return txn;
}

TEST(LockAuditTest, CeilingGrantRuleAcceptsLegalGrant) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kCeiling};
  // t1 (weak) declares objects 1 and 2 and holds a write on 1; the ceiling
  // of both objects is t1's priority (key 10).
  cc::CcTxn t1 = ceiling_txn(1, 10,
                             {{1, LockMode::kWrite}, {2, LockMode::kWrite}});
  cc::CcTxn t2 = ceiling_txn(2, 4, {{3, LockMode::kWrite}});
  audit.on_txn_begin(t1);
  audit.on_grant(t1, 1, LockMode::kWrite);
  audit.on_txn_begin(t2);
  // t2's base (key 4) is strictly higher than the rw-ceiling (key 10):
  // the grant is what PCP itself would do.
  audit.on_grant(t2, 3, LockMode::kWrite);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(LockAuditTest, CeilingGrantRuleFlagsIllegalGrant) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kCeiling};
  cc::CcTxn t1 = ceiling_txn(1, 10,
                             {{1, LockMode::kWrite}, {2, LockMode::kWrite}});
  // Mutation: t3's base (key 20) does NOT exceed object 1's rw-ceiling
  // (key 10), yet the broken twin grants object 3 anyway.
  cc::CcTxn t3 = ceiling_txn(3, 20, {{3, LockMode::kWrite}});
  audit.on_txn_begin(t1);
  audit.on_grant(t1, 1, LockMode::kWrite);
  audit.on_txn_begin(t3);
  audit.on_grant(t3, 3, LockMode::kWrite);
  ASSERT_EQ(monitor.violations(), 1u);
  EXPECT_EQ(monitor.reports()[0].rule, "pcp.grant_rule");
  EXPECT_FALSE(monitor.reports()[0].trace.empty());
}

TEST(LockAuditTest, ReadLockedObjectUsesWriteCeiling) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kCeiling};
  // Object 1 is declared read-only by everyone, so its *write* ceiling is
  // lowest() — a read lock on it must not block anybody.
  cc::CcTxn reader = ceiling_txn(1, 10, {{1, LockMode::kRead}});
  cc::CcTxn weak = ceiling_txn(2, 30, {{2, LockMode::kWrite}});
  audit.on_txn_begin(reader);
  audit.on_grant(reader, 1, LockMode::kRead);
  audit.on_txn_begin(weak);
  audit.on_grant(weak, 2, LockMode::kWrite);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(LockAuditTest, AdoptionSkipsCeilingGrantRule) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  LockAudit audit{monitor, ProtocolFamily::kCeiling};
  cc::CcTxn t1 = ceiling_txn(1, 10,
                             {{1, LockMode::kWrite}, {2, LockMode::kWrite}});
  cc::CcTxn t3 = ceiling_txn(3, 20, {{3, LockMode::kWrite}});
  audit.on_txn_begin(t1);
  audit.on_grant(t1, 1, LockMode::kWrite);
  audit.on_txn_begin(t3);
  // The same install that FlagsIllegalGrant rejects is legal as a failover
  // adoption: the previous manager already ran the grant rule.
  audit.on_adopt(t3, 3, LockMode::kWrite);
  EXPECT_EQ(monitor.violations(), 0u);
}

}  // namespace
}  // namespace rtdb::check
