#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "check/lock_audit.hpp"
#include "check/monitor.hpp"
#include "sim/kernel.hpp"

// The blocking-bound audit: the LockAudit measures every block→unblock
// span and the monitor gates it against the analytic worst case
// (analysis::analyze → ConformanceMonitor::arm_bounds). Mutation-style:
// a span inside the bound passes untouched, a deliberately-loosened
// (tiny) bound is tripped, and an Unbounded verdict (no gate) measures
// without flagging.

namespace rtdb::check {
namespace {

using cc::LockMode;
using sim::Duration;

cc::CcTxn make_txn(std::uint64_t id, std::int64_t prio_key) {
  cc::CcTxn txn;
  txn.id = db::TxnId{id};
  txn.attempt = 1;
  txn.base_priority = sim::Priority{prio_key, static_cast<std::uint32_t>(id)};
  return txn;
}

std::span<cc::CcTxn* const> blockers(std::vector<cc::CcTxn*>& v) { return v; }

TEST(BoundAuditTest, SpanWithinBoundPassesAndIsRecorded) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  monitor.arm_bounds(Duration::units(10));
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 7);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  std::vector<cc::CcTxn*> b{&t1};
  audit.on_block(t2, 10, LockMode::kWrite, blockers(b));
  k.run_for(Duration::units(6));
  audit.on_unblock(t2);
  EXPECT_EQ(monitor.bound_violations(), 0u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_DOUBLE_EQ(monitor.observed_max_blocking_units(), 6.0);
}

TEST(BoundAuditTest, LoosenedBoundIsCaught) {
  // The mutation fixture: arm a deliberately-loosened (too-tight) bound
  // and let the same legal trace run — the 6-unit episode must trip it.
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  monitor.arm_bounds(Duration::units(2));
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 7);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  std::vector<cc::CcTxn*> b{&t1};
  audit.on_block(t2, 10, LockMode::kWrite, blockers(b));
  k.run_for(Duration::units(6));
  audit.on_unblock(t2);
  EXPECT_EQ(monitor.bound_violations(), 1u);
  ASSERT_FALSE(monitor.reports().empty());
  EXPECT_EQ(monitor.reports().back().rule, "bound.blocking");
  EXPECT_NE(monitor.reports().back().detail.find("exceeding"),
            std::string::npos);
  // Bound violations are their own scalar, not conformance violations.
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_DOUBLE_EQ(monitor.observed_max_blocking_units(), 6.0);
}

TEST(BoundAuditTest, UnboundedVerdictMeasuresWithoutGating) {
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  monitor.arm_bounds(std::nullopt);  // Unbounded: measure-only
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 7);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  std::vector<cc::CcTxn*> b{&t1};
  audit.on_block(t2, 10, LockMode::kWrite, blockers(b));
  k.run_for(Duration::units(5000));
  audit.on_unblock(t2);
  EXPECT_EQ(monitor.bound_violations(), 0u);
  EXPECT_TRUE(monitor.reports().empty());
  EXPECT_DOUBLE_EQ(monitor.observed_max_blocking_units(), 5000.0);
}

TEST(BoundAuditTest, AbortClosesTheEpisode) {
  // A watchdog kill ends the attempt without on_unblock; on_txn_end must
  // close the open episode so the kill-at-deadline span is observed.
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  monitor.arm_bounds(Duration::units(4));
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 7);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  std::vector<cc::CcTxn*> b{&t1};
  audit.on_block(t2, 10, LockMode::kWrite, blockers(b));
  k.run_for(Duration::units(9));
  audit.on_txn_end(t2);
  EXPECT_EQ(monitor.bound_violations(), 1u);
  EXPECT_DOUBLE_EQ(monitor.observed_max_blocking_units(), 9.0);
}

TEST(BoundAuditTest, RepeatedBlocksAreSeparateEpisodes) {
  // Two short waits must not be summed into one long episode: the bound
  // is per block→unblock span.
  sim::Kernel k;
  ConformanceMonitor monitor{k};
  monitor.arm_bounds(Duration::units(10));
  LockAudit audit{monitor, ProtocolFamily::kTwoPhase};
  cc::CcTxn t1 = make_txn(1, 5);
  cc::CcTxn t2 = make_txn(2, 7);
  audit.on_txn_begin(t1);
  audit.on_txn_begin(t2);
  audit.on_grant(t1, 10, LockMode::kWrite);
  std::vector<cc::CcTxn*> b{&t1};
  audit.on_block(t2, 10, LockMode::kWrite, blockers(b));
  k.run_for(Duration::units(7));
  audit.on_unblock(t2);
  audit.on_block(t2, 11, LockMode::kWrite, blockers(b));
  k.run_for(Duration::units(7));
  audit.on_unblock(t2);
  EXPECT_EQ(monitor.bound_violations(), 0u);
  EXPECT_DOUBLE_EQ(monitor.observed_max_blocking_units(), 7.0);
}

}  // namespace
}  // namespace rtdb::check
