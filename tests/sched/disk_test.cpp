#include "sched/disk.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"

namespace rtdb::sched {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Priority;
using sim::ProcessId;
using sim::Task;

Duration tu(std::int64_t n) { return Duration::units(n); }

TEST(DiskTest, UnlimitedServersActAsPureDelay) {
  Kernel k;
  IoSubsystem io{k, IoSubsystem::kUnlimited};
  std::vector<double> finish;
  auto op = [](Kernel& k, IoSubsystem& io, std::vector<double>& finish) -> Task<void> {
    co_await io.io(Duration::units(5));
    finish.push_back(k.now().as_units());
  };
  for (int i = 0; i < 4; ++i) k.spawn("op", op(k, io, finish));
  k.run();
  EXPECT_EQ(finish, (std::vector<double>{5.0, 5.0, 5.0, 5.0}));
  EXPECT_EQ(io.completed(), 4u);
}

TEST(DiskTest, SingleServerSerializes) {
  Kernel k;
  IoSubsystem io{k, 1};
  std::vector<double> finish;
  auto op = [](Kernel& k, IoSubsystem& io, std::vector<double>& finish) -> Task<void> {
    co_await io.io(Duration::units(5));
    finish.push_back(k.now().as_units());
  };
  for (int i = 0; i < 3; ++i) k.spawn("op", op(k, io, finish));
  k.run();
  EXPECT_EQ(finish, (std::vector<double>{5.0, 10.0, 15.0}));
  EXPECT_EQ(io.busy_time(), tu(15));
}

TEST(DiskTest, TwoServersOverlap) {
  Kernel k;
  IoSubsystem io{k, 2};
  std::vector<double> finish;
  auto op = [](Kernel& k, IoSubsystem& io, std::vector<double>& finish) -> Task<void> {
    co_await io.io(Duration::units(6));
    finish.push_back(k.now().as_units());
  };
  for (int i = 0; i < 3; ++i) k.spawn("op", op(k, io, finish));
  k.run();
  EXPECT_EQ(finish, (std::vector<double>{6.0, 6.0, 12.0}));
}

TEST(DiskTest, HigherPriorityJumpsQueue) {
  Kernel k;
  IoSubsystem io{k, 1};
  std::vector<int> order;
  auto op = [](Kernel& k, IoSubsystem& io, std::vector<int>& order, int id,
               Priority p, Duration delay) -> Task<void> {
    co_await k.delay(delay);
    co_await io.io(Duration::units(10), p);
    order.push_back(id);
  };
  // id0 occupies the disk 0..10. id1 (low prio) queues at t=1; id2 (high
  // prio) queues at t=2 and must be served before id1.
  k.spawn("op0", op(k, io, order, 0, Priority{5, 0}, tu(0)));
  k.spawn("op1", op(k, io, order, 1, Priority{9, 0}, tu(1)));
  k.spawn("op2", op(k, io, order, 2, Priority{1, 0}, tu(2)));
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(DiskTest, EqualPriorityIsFifo) {
  Kernel k;
  IoSubsystem io{k, 1};
  std::vector<int> order;
  auto op = [](IoSubsystem& io, std::vector<int>& order, int id) -> Task<void> {
    co_await io.io(Duration::units(2), Priority{3, 0});
    order.push_back(id);
  };
  for (int i = 0; i < 4; ++i) k.spawn("op", op(io, order, i));
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DiskTest, ZeroServiceIsInstant) {
  Kernel k;
  IoSubsystem io{k, 1};
  bool done = false;
  k.spawn("op", [](Kernel& k, IoSubsystem& io, bool& done) -> Task<void> {
    co_await io.io(Duration::zero());
    EXPECT_EQ(k.now().as_units(), 0.0);
    done = true;
  }(k, io, done));
  k.run();
  EXPECT_TRUE(done);
}

TEST(DiskTest, KilledWaiterLeavesQueue) {
  Kernel k;
  IoSubsystem io{k, 1};
  ProcessId victim{};
  double other_done = -1;
  k.spawn("holder", [](IoSubsystem& io) -> Task<void> {
    co_await io.io(Duration::units(10));
  }(io));
  victim = k.spawn("victim", [](IoSubsystem& io) -> Task<void> {
    co_await io.io(Duration::units(10));
    ADD_FAILURE() << "victim must not be served";
  }(io));
  k.spawn("other", [](Kernel& k, IoSubsystem& io, double& done) -> Task<void> {
    co_await io.io(Duration::units(10));
    done = k.now().as_units();
  }(k, io, other_done));
  k.spawn("killer", [](Kernel& k, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(1));
    k.kill(victim);
  }(k, victim));
  k.run();
  EXPECT_EQ(other_done, 20.0);  // victim's slot was skipped
  EXPECT_EQ(io.completed(), 2u);
}

TEST(DiskTest, KilledInServiceFreesTheDisk) {
  Kernel k;
  IoSubsystem io{k, 1};
  double other_done = -1;
  ProcessId victim = k.spawn("victim", [](IoSubsystem& io) -> Task<void> {
    co_await io.io(Duration::units(100));
  }(io));
  k.spawn("other", [](Kernel& k, IoSubsystem& io, double& done) -> Task<void> {
    co_await io.io(Duration::units(5));
    done = k.now().as_units();
  }(k, io, other_done));
  k.spawn("killer", [](Kernel& k, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(3));
    k.kill(victim);
  }(k, victim));
  k.run();
  EXPECT_EQ(other_done, 8.0);  // victim aborted at 3, other served 3..8
  EXPECT_EQ(io.busy(), 0);
  EXPECT_EQ(io.queue_length(), 0u);
}

}  // namespace
}  // namespace rtdb::sched
