#include "sched/cpu.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace rtdb::sched {
namespace {

using sim::Duration;
using sim::Kernel;
using sim::Priority;
using sim::ProcessId;
using sim::Task;
using sim::TimePoint;

Duration tu(std::int64_t n) { return Duration::units(n); }

// Highest priority = smallest key.
Priority prio(std::int64_t key) { return Priority{key, 0}; }

TEST(CpuTest, SingleJobRunsForItsWork) {
  Kernel k;
  PreemptiveCpu cpu{k};
  double done_at = -1;
  k.spawn("p", [](Kernel& k, PreemptiveCpu& cpu, double& done_at) -> Task<void> {
    co_await cpu.execute(Duration::units(10), Priority{1, 0});
    done_at = k.now().as_units();
  }(k, cpu, done_at));
  k.run();
  EXPECT_EQ(done_at, 10.0);
  EXPECT_EQ(cpu.busy_time(), tu(10));
  EXPECT_EQ(cpu.active_jobs(), 0u);
}

TEST(CpuTest, ZeroWorkCompletesInstantly) {
  Kernel k;
  PreemptiveCpu cpu{k};
  bool done = false;
  k.spawn("p", [](Kernel& k, PreemptiveCpu& cpu, bool& done) -> Task<void> {
    co_await cpu.execute(Duration::zero(), Priority{1, 0});
    EXPECT_EQ(k.now(), TimePoint::origin());
    done = true;
  }(k, cpu, done));
  k.run();
  EXPECT_TRUE(done);
}

TEST(CpuTest, HigherPriorityPreemptsImmediately) {
  Kernel k;
  PreemptiveCpu cpu{k};
  std::vector<std::pair<std::string, double>> finish;
  auto job = [](Kernel& k, PreemptiveCpu& cpu, auto& finish, std::string name,
                Duration work, Priority p, Duration start_delay) -> Task<void> {
    co_await k.delay(start_delay);
    co_await cpu.execute(work, p);
    finish.emplace_back(name, k.now().as_units());
  };
  // Low priority starts at t=0 with 10tu of work; high priority arrives at
  // t=4 with 3tu. High finishes at 7, low at 13.
  k.spawn("low", job(k, cpu, finish, "low", tu(10), prio(20), tu(0)));
  k.spawn("high", job(k, cpu, finish, "high", tu(3), prio(10), tu(4)));
  k.run();
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_EQ(finish[0], (std::pair<std::string, double>{"high", 7.0}));
  EXPECT_EQ(finish[1], (std::pair<std::string, double>{"low", 13.0}));
}

TEST(CpuTest, EqualPrioritiesRunInAdmissionOrder) {
  Kernel k;
  PreemptiveCpu cpu{k};
  std::vector<int> order;
  auto job = [](PreemptiveCpu& cpu, std::vector<int>& order, int id) -> Task<void> {
    co_await cpu.execute(Duration::units(5), Priority{7, 0});
    order.push_back(id);
  };
  for (int i = 0; i < 3; ++i) k.spawn("j", job(cpu, order, i));
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(k.now().as_units(), 15.0);
}

TEST(CpuTest, MultiCoreRunsJobsInParallel) {
  Kernel k;
  PreemptiveCpu cpu{k, 2};
  std::vector<double> finish;
  auto job = [](Kernel& k, PreemptiveCpu& cpu, std::vector<double>& finish,
                Priority p) -> Task<void> {
    co_await cpu.execute(Duration::units(10), p);
    finish.push_back(k.now().as_units());
  };
  k.spawn("a", job(k, cpu, finish, prio(1)));
  k.spawn("b", job(k, cpu, finish, prio(2)));
  k.spawn("c", job(k, cpu, finish, prio(3)));
  k.run();
  // a and b run in parallel (finish at 10); c waits for a core (finish 20).
  EXPECT_EQ(finish, (std::vector<double>{10.0, 10.0, 20.0}));
  EXPECT_EQ(cpu.busy_time(), tu(30));
}

TEST(CpuTest, PreemptedJobResumesWithRemainingWork) {
  Kernel k;
  PreemptiveCpu cpu{k};
  double low_done = -1;
  k.spawn("low", [](Kernel& k, PreemptiveCpu& cpu, double& low_done) -> Task<void> {
    co_await cpu.execute(Duration::units(6), Priority{20, 0});
    low_done = k.now().as_units();
  }(k, cpu, low_done));
  k.spawn("high", [](Kernel& k, PreemptiveCpu& cpu) -> Task<void> {
    co_await k.delay(Duration::units(2));  // low has done 2 of 6
    co_await cpu.execute(Duration::units(5), Priority{10, 0});
    EXPECT_EQ(k.now().as_units(), 7.0);
  }(k, cpu));
  k.run();
  // low resumes at 7 with 4 remaining -> finishes at 11.
  EXPECT_EQ(low_done, 11.0);
}

TEST(CpuTest, SetPriorityBoostCausesPreemption) {
  Kernel k;
  PreemptiveCpu cpu{k};
  JobId low_job{};
  double low_done = -1;
  double mid_done = -1;
  k.spawn("mid", [](Kernel& k, PreemptiveCpu& cpu, double& mid_done) -> Task<void> {
    co_await cpu.execute(Duration::units(10), Priority{10, 0});
    mid_done = k.now().as_units();
  }(k, cpu, mid_done));
  k.spawn("low", [](Kernel& k, PreemptiveCpu& cpu, JobId& low_job,
                    double& low_done) -> Task<void> {
    co_await k.yield();
    co_await cpu.execute(Duration::units(4), Priority{20, 0}, &low_job);
    low_done = k.now().as_units();
  }(k, cpu, low_job, low_done));
  // At t=3 the low job inherits a very high priority (e.g. it blocks a
  // high-priority transaction) and must preempt mid.
  k.spawn("booster", [](Kernel& k, PreemptiveCpu& cpu, JobId& low_job) -> Task<void> {
    co_await k.delay(Duration::units(3));
    EXPECT_TRUE(cpu.job_active(low_job));  // ASSERT_* returns; not coroutine-safe
    cpu.set_priority(low_job, Priority{1, 0});
  }(k, cpu, low_job));
  k.run();
  EXPECT_EQ(low_done, 7.0);   // ran 3..7 after the boost
  EXPECT_EQ(mid_done, 14.0);  // 0..3 and 7..14
}

TEST(CpuTest, SetPriorityOnStaleIdIsIgnored) {
  Kernel k;
  PreemptiveCpu cpu{k};
  JobId job{};
  k.spawn("p", [](PreemptiveCpu& cpu, JobId& job) -> Task<void> {
    co_await cpu.execute(Duration::units(1), Priority{1, 0}, &job);
  }(cpu, job));
  k.run();
  EXPECT_FALSE(cpu.job_active(job));
  cpu.set_priority(job, Priority{0, 0});  // must not crash or disturb anything
}

TEST(CpuTest, KilledJobFreesTheCore) {
  Kernel k;
  PreemptiveCpu cpu{k};
  double other_done = -1;
  ProcessId victim = k.spawn("victim", [](PreemptiveCpu& cpu) -> Task<void> {
    co_await cpu.execute(Duration::units(100), Priority{1, 0});
    ADD_FAILURE() << "victim must not complete";
  }(cpu));
  k.spawn("other", [](Kernel& k, PreemptiveCpu& cpu, double& done) -> Task<void> {
    co_await cpu.execute(Duration::units(10), Priority{2, 0});
    done = k.now().as_units();
  }(k, cpu, other_done));
  k.spawn("killer", [](Kernel& k, ProcessId victim) -> Task<void> {
    co_await k.delay(Duration::units(5));
    k.kill(victim);
  }(k, victim));
  k.run();
  // Other waited 5tu behind the victim, then ran its 10tu.
  EXPECT_EQ(other_done, 15.0);
  EXPECT_EQ(cpu.active_jobs(), 0u);
}

TEST(CpuTest, BusyTimeExcludesIdleGaps) {
  Kernel k;
  PreemptiveCpu cpu{k};
  k.spawn("p", [](Kernel& k, PreemptiveCpu& cpu) -> Task<void> {
    co_await cpu.execute(Duration::units(4), Priority{1, 0});
    co_await k.delay(Duration::units(10));  // idle gap
    co_await cpu.execute(Duration::units(6), Priority{1, 0});
  }(k, cpu));
  k.run();
  EXPECT_EQ(cpu.busy_time(), tu(10));
  EXPECT_EQ(k.now().as_units(), 20.0);
}

TEST(CpuTest, ManyPreemptionsPreserveTotalWork) {
  Kernel k;
  PreemptiveCpu cpu{k};
  int done = 0;
  auto job = [](PreemptiveCpu& cpu, int& done, std::int64_t key) -> Task<void> {
    co_await cpu.execute(Duration::units(7), Priority{key, 0});
    ++done;
  };
  // Arrivals in increasing priority => each new arrival preempts.
  for (int i = 0; i < 10; ++i) {
    k.spawn("j", [](Kernel& k, PreemptiveCpu& cpu, int& done, int i,
                    auto job) -> Task<void> {
      co_await k.delay(Duration::units(i));
      co_await job(cpu, done, 100 - i);
    }(k, cpu, done, i, job));
  }
  k.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(cpu.busy_time(), tu(70));
  EXPECT_EQ(k.now().as_units(), 70.0);  // work conserved, no idle
}

}  // namespace
}  // namespace rtdb::sched
