#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"

// Hand-computed fixtures for the static blocking-bound analyzer: every
// expected value below is worked out from the config by hand (class
// deadlines, margins, ladder sums), so a formula regression shows up as
// an exact-value mismatch, not a drifting tolerance.

namespace rtdb::analysis {
namespace {

using core::DistScheme;
using core::Protocol;
using core::SystemConfig;
using sim::Duration;

// The Fig-2/3 single-site shape: one aperiodic class per size.
SystemConfig fig2_like(Protocol protocol, std::uint32_t size) {
  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.db_objects = 200;
  cfg.workload.size_min = size;
  cfg.workload.size_max = size;
  cfg.workload.transaction_count = 400;
  cfg.workload.slack_min = 15;
  cfg.workload.slack_max = 30;
  cfg.workload.est_time_per_object = Duration::units(4);
  return cfg;
}

TEST(BoundsTest, AperiodicSingleSiteExactValue) {
  // D(size) = est * size * slack_max = 4 * 8 * 30 = 960 units; single
  // class, no margin on the sim backend, so the worst bound is D itself.
  const BlockingBounds b = analyze(fig2_like(Protocol::kPriorityCeiling, 8));
  EXPECT_TRUE(b.bounded);
  EXPECT_EQ(b.kind, DerivationKind::kSingleCriticalSection);
  ASSERT_EQ(b.classes.size(), 1u);
  EXPECT_EQ(b.classes[0].label, "size=8");
  EXPECT_EQ(b.classes[0].relative_deadline, Duration::units(960));
  EXPECT_EQ(b.classes[0].bound, Duration::units(960));
  EXPECT_EQ(b.margin, Duration::zero());
  EXPECT_EQ(b.worst_bound, Duration::units(960));
  EXPECT_DOUBLE_EQ(b.worst_bound_units(), 960.0);
}

TEST(BoundsTest, DerivationKindPerProtocolFamily) {
  const auto kind = [](Protocol p) { return analyze(fig2_like(p, 8)).kind; };
  EXPECT_EQ(kind(Protocol::kPriorityCeiling),
            DerivationKind::kSingleCriticalSection);
  EXPECT_EQ(kind(Protocol::kPriorityCeilingExclusive),
            DerivationKind::kSingleCriticalSection);
  EXPECT_EQ(kind(Protocol::kTwoPhase), DerivationKind::kFixedChain);
  EXPECT_EQ(kind(Protocol::kWoundWait), DerivationKind::kFixedChain);
  EXPECT_EQ(kind(Protocol::kTwoPhasePriority),
            DerivationKind::kDeadlineBackstop);
  EXPECT_EQ(kind(Protocol::kPriorityInheritance),
            DerivationKind::kDeadlineBackstop);
  EXPECT_EQ(kind(Protocol::kHighPriority),
            DerivationKind::kDeadlineBackstop);
  EXPECT_EQ(kind(Protocol::kTimestampOrdering), DerivationKind::kUnbounded);
  EXPECT_EQ(kind(Protocol::kWaitDie), DerivationKind::kUnbounded);
}

TEST(BoundsTest, ThreeTaskPeriodicPcpFixture) {
  // The classic three-periodic-task PCP example shape: periods 100 / 150 /
  // 300 units with implicit deadlines (slack 1.0). Per-class bound is
  // min(D_c, R_max) = D_c; the worst bound is the longest deadline.
  SystemConfig cfg;
  cfg.protocol = Protocol::kPriorityCeiling;
  cfg.workload.transaction_count = 0;  // periodic-only task set
  for (const std::int64_t period : {100, 150, 300}) {
    workload::PeriodicSource source;
    source.period = Duration::units(period);
    source.size = 2;
    cfg.workload.periodic.push_back(source);
  }
  const BlockingBounds b = analyze(cfg);
  EXPECT_TRUE(b.bounded);
  ASSERT_EQ(b.classes.size(), 3u);
  EXPECT_EQ(b.classes[0].label, "periodic[0]");
  EXPECT_EQ(b.classes[0].bound, Duration::units(100));
  EXPECT_EQ(b.classes[1].bound, Duration::units(150));
  EXPECT_EQ(b.classes[2].bound, Duration::units(300));
  EXPECT_EQ(b.worst_bound, Duration::units(300));
}

TEST(BoundsTest, PeriodicDeadlineSlackScalesTheBound) {
  SystemConfig cfg;
  cfg.protocol = Protocol::kPriorityCeiling;
  cfg.workload.transaction_count = 0;
  workload::PeriodicSource source;
  source.period = Duration::units(200);
  source.deadline_slack = 0.5;  // deadline halfway to the next release
  cfg.workload.periodic.push_back(source);
  const BlockingBounds b = analyze(cfg);
  ASSERT_EQ(b.classes.size(), 1u);
  EXPECT_EQ(b.classes[0].relative_deadline, Duration::units(100));
  EXPECT_EQ(b.worst_bound, Duration::units(100));
}

// The Fig-4-style distributed shape: 2 sites, global ceiling manager.
SystemConfig two_site_global() {
  SystemConfig cfg;
  cfg.scheme = DistScheme::kGlobalCeiling;
  cfg.sites = 2;
  cfg.db_objects = 60;
  cfg.comm_delay = Duration::units(2);
  cfg.workload.size_min = 4;
  cfg.workload.size_max = 8;
  cfg.workload.transaction_count = 300;
  cfg.workload.slack_min = 3.5;
  cfg.workload.slack_max = 7;
  cfg.workload.est_time_per_object = Duration::units(3);
  return cfg;
}

TEST(BoundsTest, TwoSiteGlobalSchemeMargin) {
  // Classes size 4..8: D(s) = 3 * s * 7 = 21s units, worst 168. The
  // fault-free distributed margin is 4 teardown hops of comm_delay:
  // 4 * 2 = 8. Worst bound 168 + 8 = 176 units.
  const BlockingBounds b = analyze(two_site_global());
  EXPECT_TRUE(b.bounded);
  // Every distributed scheme runs ceiling managers, whatever the
  // single-site protocol knob says.
  EXPECT_EQ(b.kind, DerivationKind::kSingleCriticalSection);
  ASSERT_EQ(b.classes.size(), 5u);
  EXPECT_EQ(b.classes[0].relative_deadline, Duration::units(84));
  EXPECT_EQ(b.classes[4].relative_deadline, Duration::units(168));
  EXPECT_EQ(b.margin, Duration::units(8));
  EXPECT_EQ(b.worst_bound, Duration::units(176));
}

TEST(BoundsTest, MessageFaultsAddTheRetransmitLadder) {
  // hop = comm_delay = 2. Defaults: retransmit_max 5, backoff 8 doubling,
  // cap 256 → ladder = (8+16+32+64+128) + 5 hops = 248 + 10 = 258. Plus
  // the fault-free 4 hops = 8. Margin 266, worst bound 168 + 266 = 434.
  SystemConfig cfg = two_site_global();
  cfg.faults.drop_rate = 0.05;
  const BlockingBounds b = analyze(cfg);
  EXPECT_TRUE(b.bounded);
  EXPECT_EQ(b.margin, Duration::units(266));
  EXPECT_EQ(b.worst_bound, Duration::units(434));
}

TEST(BoundsTest, BackoffLadderSaturatesAtTheCap) {
  SystemConfig cfg = two_site_global();
  cfg.faults.drop_rate = 0.05;
  cfg.backoff_base = Duration::units(128);
  cfg.backoff_max = Duration::units(256);
  // Ladder: 128 + 256 + 256 + 256 + 256 (cap) + 5 hops = 1152 + 10; plus
  // the 4 fault-free hops = 8 → margin 1170.
  const BlockingBounds b = analyze(cfg);
  EXPECT_EQ(b.margin, Duration::units(1170));
}

TEST(BoundsTest, CrashAddsFailoverWindowAndOutage) {
  // A healing crash adds the failure-detection window, heartbeat_interval
  // * (miss_threshold + 2) = 20 * 5 = 100, plus the outage itself (400).
  // Fault-free hops 8 → margin 508, worst bound 168 + 508 = 676.
  SystemConfig cfg = two_site_global();
  cfg.faults.crashes.push_back(
      {1, Duration::units(300), Duration::units(400)});
  const BlockingBounds b = analyze(cfg);
  EXPECT_TRUE(b.bounded);
  EXPECT_EQ(b.margin, Duration::units(508));
  EXPECT_EQ(b.worst_bound, Duration::units(676));
}

TEST(BoundsTest, UnhealedOutagesAreUnbounded) {
  SystemConfig crash_cfg = two_site_global();
  crash_cfg.faults.crashes.push_back({1, Duration::units(300), {}});
  const BlockingBounds crash = analyze(crash_cfg);
  EXPECT_FALSE(crash.bounded);
  EXPECT_EQ(crash.kind, DerivationKind::kUnbounded);
  EXPECT_NE(crash.argument.find("never recovers"), std::string::npos);
  EXPECT_DOUBLE_EQ(crash.worst_bound_units(), 0.0);

  SystemConfig part_cfg = two_site_global();
  part_cfg.faults.partitions.push_back({{0}, Duration::units(300), {}, true});
  const BlockingBounds part = analyze(part_cfg);
  EXPECT_FALSE(part.bounded);
  EXPECT_NE(part.argument.find("never heals"), std::string::npos);
}

TEST(BoundsTest, UnboundedVerdictsCarryReasons) {
  const BlockingBounds tso =
      analyze(fig2_like(Protocol::kTimestampOrdering, 8));
  EXPECT_FALSE(tso.bounded);
  EXPECT_FALSE(tso.argument.empty());
  EXPECT_NE(tso.argument.find("restart"), std::string::npos);
  EXPECT_DOUBLE_EQ(tso.worst_bound_units(), 0.0);
  EXPECT_TRUE(tso.classes.empty());

  const BlockingBounds wd = analyze(fig2_like(Protocol::kWaitDie, 8));
  EXPECT_FALSE(wd.bounded);
  EXPECT_NE(wd.argument.find("younger"), std::string::npos);
}

TEST(BoundsTest, ThreadBackendAddsClockJitterMargin) {
  // 500 ms of real clock allowance at 20 us per unit = 25000 units.
  SystemConfig cfg = fig2_like(Protocol::kPriorityCeiling, 8);
  cfg.backend = core::BackendKind::kThreads;
  cfg.rt_unit_nanos = 20'000;
  const BlockingBounds b = analyze(cfg);
  EXPECT_TRUE(b.bounded);
  EXPECT_EQ(b.margin, Duration::units(25'000));
  EXPECT_EQ(b.worst_bound, Duration::units(25'960));
}

TEST(BoundsTest, WideSizeRangeKeepsExactWorstBound) {
  // A pathologically wide size range enumerates only the endpoints; the
  // worst bound (monotone in size) is exact either way.
  SystemConfig cfg = fig2_like(Protocol::kTwoPhase, 8);
  cfg.workload.size_min = 1;
  cfg.workload.size_max = 1000;
  const BlockingBounds b = analyze(cfg);
  ASSERT_EQ(b.classes.size(), 2u);
  EXPECT_EQ(b.classes[1].relative_deadline, Duration::units(120'000));
  EXPECT_EQ(b.worst_bound, Duration::units(120'000));
}

TEST(BoundsTest, BoundedArgumentsAreNonEmpty) {
  for (const Protocol p :
       {Protocol::kPriorityCeiling, Protocol::kTwoPhase,
        Protocol::kTwoPhasePriority, Protocol::kWoundWait}) {
    const BlockingBounds b = analyze(fig2_like(p, 4));
    EXPECT_TRUE(b.bounded) << static_cast<int>(p);
    EXPECT_FALSE(b.argument.empty()) << static_cast<int>(p);
  }
}

}  // namespace
}  // namespace rtdb::analysis
