// Figure 6 — Deadline Missing Transaction Percentage (distributed).
//
// % deadline-missing transactions versus transaction mix for both
// approaches at two fixed communication delays.
//
// Expected shape (paper §4): the gap between the approaches widens with
// the communication delay, and both curves fall as the proportion of
// read-only transactions rises (lower conflict rate).

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const double delays[] = {1, 5};
  const double mixes[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  exp::SweepSpec spec;
  spec.name = "fig6_miss_pct";
  spec.title =
      "Fig 6: % deadline-missing vs transaction mix at communication "
      "delays 1tu and 5tu";
  spec.default_runs = kDistRuns;
  for (const double mix : mixes) {
    for (const double delay : delays) {
      for (const DistScheme scheme :
           {DistScheme::kGlobalCeiling, DistScheme::kLocalCeiling}) {
        spec.add_cell(
            {{"read_only_pct", stats::Table::num(mix * 100, 0)},
             {"delay", stats::Table::num(delay, 1)},
             {"scheme",
              scheme == DistScheme::kGlobalCeiling ? "global" : "local"}},
            dist_config(scheme, mix, delay, 1));
      }
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"read-only %", "global d=1", "local d=1", "global d=5",
                      "local d=5"}};
  std::size_t cell = 0;
  for (const double mix : mixes) {
    std::vector<std::string> row{stats::Table::num(mix * 100, 0)};
    for (std::size_t d = 0; d < std::size(delays); ++d) {
      row.push_back(stats::Table::num(res.cell(cell++).pct_missed().mean));
      row.push_back(stats::Table::num(res.cell(cell++).pct_missed().mean));
    }
    table.add_row(std::move(row));
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
