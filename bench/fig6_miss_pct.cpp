// Figure 6 — Deadline Missing Transaction Percentage (distributed).
//
// % deadline-missing transactions versus transaction mix for both
// approaches at two fixed communication delays.
//
// Expected shape (paper §4): the gap between the approaches widens with
// the communication delay, and both curves fall as the proportion of
// read-only transactions rises (lower conflict rate).

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;
  using core::ExperimentRunner;

  const double delays[] = {1, 5};
  const double mixes[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  stats::Table table{{"read-only %", "global d=1", "local d=1", "global d=5",
                      "local d=5"}};
  for (const double mix : mixes) {
    std::vector<std::string> row{stats::Table::num(mix * 100, 0)};
    for (const double delay : delays) {
      const auto global = ExperimentRunner::run_many(
          dist_config(DistScheme::kGlobalCeiling, mix, delay, 1), kDistRuns);
      const auto local = ExperimentRunner::run_many(
          dist_config(DistScheme::kLocalCeiling, mix, delay, 1), kDistRuns);
      row.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(global)));
      row.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(local)));
    }
    table.add_row(std::move(row));
  }
  emit(table,
       "Fig 6: % deadline-missing vs transaction mix at communication "
       "delays 1tu and 5tu, 5 runs/point",
       argc, argv);
  return 0;
}
