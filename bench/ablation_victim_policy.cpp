// Ablation — deadlock victim selection for the 2PL protocols, the design
// choice behind part of the P-vs-L gap in Figures 2/3 and a knob the
// paper's discussion of restarts ("the preemption decision ... should not
// necessarily be based only on relative deadlines") motivates examining:
//
//   requester : abort whoever closed the cycle (the classic DBMS policy)
//   lowest    : abort the least urgent member of the cycle
//   youngest  : abort the most recently started member
//
// Swept at the heavy end of the Figure 2/3 workload where deadlocks storm.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using cc::TwoPhaseLocking;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const std::pair<const char*, TwoPhaseLocking::VictimPolicy> policies[] = {
      {"requester", TwoPhaseLocking::VictimPolicy::kRequester},
      {"lowest-priority", TwoPhaseLocking::VictimPolicy::kLowestPriority},
      {"youngest", TwoPhaseLocking::VictimPolicy::kYoungest},
  };
  const std::uint32_t sizes[] = {14, 16, 18};

  exp::SweepSpec spec;
  spec.name = "ablation_victim_policy";
  spec.title =
      "Ablation: 2PL deadlock victim policies under priority queues";
  spec.default_runs = kFig23Runs;
  for (const auto& [name, policy] : policies) {
    for (const std::uint32_t size : sizes) {
      auto cfg = fig23_config(core::Protocol::kTwoPhasePriority, size, 1);
      cfg.victim_policy = policy;
      spec.add_cell({{"policy", name}, {"size", std::to_string(size)}}, cfg);
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"policy", "size", "thr obj/s", "miss %", "restarts"}};
  std::size_t cell = 0;
  for (const auto& [name, policy] : policies) {
    for (const std::uint32_t size : sizes) {
      const exp::CellResult& c = res.cell(cell++);
      table.add_row({name, std::to_string(size),
                     stats::Table::num(c.throughput()),
                     stats::Table::num(c.pct_missed()),
                     stats::Table::num(c.mean_of("restarts"), 1)});
    }
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
