// Ablation — deadlock victim selection for the 2PL protocols, the design
// choice behind part of the P-vs-L gap in Figures 2/3 and a knob the
// paper's discussion of restarts ("the preemption decision ... should not
// necessarily be based only on relative deadlines") motivates examining:
//
//   requester : abort whoever closed the cycle (the classic DBMS policy)
//   lowest    : abort the least urgent member of the cycle
//   youngest  : abort the most recently started member
//
// Swept at the heavy end of the Figure 2/3 workload where deadlocks storm.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using cc::TwoPhaseLocking;
  using core::ExperimentRunner;

  const std::pair<const char*, TwoPhaseLocking::VictimPolicy> policies[] = {
      {"requester", TwoPhaseLocking::VictimPolicy::kRequester},
      {"lowest-priority", TwoPhaseLocking::VictimPolicy::kLowestPriority},
      {"youngest", TwoPhaseLocking::VictimPolicy::kYoungest},
  };
  const std::uint32_t sizes[] = {14, 16, 18};

  stats::Table table{{"policy", "size", "thr obj/s", "miss %", "restarts"}};
  for (const auto& [name, policy] : policies) {
    for (const std::uint32_t size : sizes) {
      auto cfg = fig23_config(core::Protocol::kTwoPhasePriority, size, 1);
      cfg.victim_policy = policy;
      const auto results = ExperimentRunner::run_many(cfg, kFig23Runs);
      table.add_row({
          name,
          std::to_string(size),
          stats::Table::num(ExperimentRunner::mean_throughput(results)),
          stats::Table::num(ExperimentRunner::mean_pct_missed(results)),
          stats::Table::num(
              ExperimentRunner::aggregate(results,
                                          [](const core::RunResult& r) {
                                            return static_cast<double>(
                                                r.restarts);
                                          })
                  .mean,
              1),
      });
    }
  }
  emit(table,
       "Ablation: 2PL deadlock victim policies under priority queues, "
       "10 runs/point",
       argc, argv);
  return 0;
}
