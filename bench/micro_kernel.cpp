// Microbenchmarks of the substrate: event queue, process switching,
// synchronization primitives, the preemptive CPU, and the hot paths of the
// lock protocols. These bound the cost of simulation itself (virtual-time
// events per wall-clock second), which is what makes the 10-run sweeps of
// the figure benches cheap.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cc/lock_table.hpp"
#include "cc/pcp.hpp"
#include "core/system.hpp"
#include "sched/cpu.hpp"
#include "sim/event_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/semaphore.hpp"

namespace {

using namespace rtdb;
using sim::Duration;
using sim::Kernel;
using sim::Task;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.schedule(sim::TimePoint::at_ticks(t + (i * 37) % 1000), [] {});
    }
    while (auto ev = q.pop()) {
      benchmark::DoNotOptimize(ev->time);
    }
    t += 1000;
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueCancel(benchmark::State& state) {
  sim::EventQueue q;
  for (auto _ : state) {
    sim::EventId ids[64];
    for (int i = 0; i < 64; ++i) {
      ids[i] = q.schedule(sim::TimePoint::at_ticks(i), [] {});
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(q.cancel(ids[i]));
    }
    while (q.pop()) {
    }
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_ProcessSpawnDelayComplete(benchmark::State& state) {
  for (auto _ : state) {
    Kernel k;
    for (int i = 0; i < 32; ++i) {
      k.spawn("p", [](Kernel& kern) -> Task<void> {
        for (int j = 0; j < 8; ++j) co_await kern.delay(Duration::units(1));
      }(k));
    }
    k.run();
    benchmark::DoNotOptimize(k.events_executed());
  }
}
BENCHMARK(BM_ProcessSpawnDelayComplete);

void BM_SemaphorePingPong(benchmark::State& state) {
  for (auto _ : state) {
    Kernel k;
    sim::Semaphore a{k, 0};
    sim::Semaphore b{k, 0};
    k.spawn("ping", [](sim::Semaphore& ping, sim::Semaphore& pong) -> Task<void> {
      for (int i = 0; i < 64; ++i) {
        pong.release();
        co_await ping.acquire();
      }
    }(a, b));
    k.spawn("pong", [](sim::Semaphore& ping, sim::Semaphore& pong) -> Task<void> {
      for (int i = 0; i < 64; ++i) {
        co_await pong.acquire();
        ping.release();
      }
    }(a, b));
    k.run();
  }
}
BENCHMARK(BM_SemaphorePingPong);

void BM_CpuPreemptionStorm(benchmark::State& state) {
  for (auto _ : state) {
    Kernel k;
    sched::PreemptiveCpu cpu{k};
    for (int i = 0; i < 32; ++i) {
      k.spawn("j", [](Kernel& kern, sched::PreemptiveCpu& unit, int job) -> Task<void> {
        co_await kern.delay(Duration::units(job));
        // Descending keys: every arrival preempts the previous job.
        co_await unit.execute(Duration::units(40),
                              sim::Priority{100 - job, static_cast<std::uint32_t>(job)});
      }(k, cpu, i));
    }
    k.run();
    benchmark::DoNotOptimize(cpu.busy_time());
  }
}
BENCHMARK(BM_CpuPreemptionStorm);

void BM_LockTableGrantRelease(benchmark::State& state) {
  cc::LockTable table{cc::LockTable::QueuePolicy::kPriority};
  std::vector<cc::CcTxn> txns(16);
  for (std::size_t i = 0; i < txns.size(); ++i) {
    txns[i].id = db::TxnId{i + 1};
    txns[i].base_priority = sim::Priority{static_cast<std::int64_t>(i), 0};
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < txns.size(); ++i) {
      for (db::ObjectId o = 0; o < 8; ++o) {
        benchmark::DoNotOptimize(
            table.try_grant(txns[i], static_cast<db::ObjectId>(o + 8 * i),
                            cc::LockMode::kWrite));
      }
    }
    for (auto& txn : txns) table.release_all(txn);
  }
}
BENCHMARK(BM_LockTableGrantRelease);

void BM_PcpCeilingMaintenance(benchmark::State& state) {
  Kernel k;
  cc::PriorityCeiling pcp{k, 256};
  sim::RandomStream rng{1};
  std::vector<cc::CcTxn> txns(32);
  for (std::size_t i = 0; i < txns.size(); ++i) {
    txns[i].id = db::TxnId{i + 1};
    txns[i].base_priority =
        sim::Priority{static_cast<std::int64_t>(rng.uniform_int(0, 1000)),
                      static_cast<std::uint32_t>(i)};
    std::vector<cc::Operation> ops;
    for (auto o : rng.sample_without_replacement(256, 8)) {
      ops.push_back(cc::Operation{o, cc::LockMode::kWrite});
    }
    txns[i].access = cc::AccessSet::from_operations(std::move(ops));
  }
  for (auto _ : state) {
    for (auto& txn : txns) pcp.on_begin(txn);
    for (auto& txn : txns) pcp.on_end(txn);
    benchmark::DoNotOptimize(pcp.active_transactions());
  }
}
BENCHMARK(BM_PcpCeilingMaintenance);

void BM_NetworkDeliverNSites(benchmark::State& state) {
  // Per-tick cost of the message layer at scale: every site sends one
  // small message to each of 8 neighbours per round, across `sites` sites.
  // This is the control-plane hot path the batching work targets — cost
  // must stay proportional to live messages, not to the site count.
  const auto sites = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Kernel k;
    net::Network network{k, sites, Duration::units(1)};
    std::vector<std::unique_ptr<net::MessageServer>> servers;
    servers.reserve(sites);
    std::uint64_t received = 0;
    for (net::SiteId id = 0; id < sites; ++id) {
      servers.push_back(std::make_unique<net::MessageServer>(k, network, id));
      servers.back()->on<dist::EndTxnMsg>(
          [&received](net::SiteId, dist::EndTxnMsg) { ++received; });
      servers.back()->start();
    }
    for (int round = 0; round < 4; ++round) {
      for (net::SiteId from = 0; from < sites; ++from) {
        for (std::uint32_t n = 1; n <= 8; ++n) {
          servers[from]->send((from + n) % sites,
                              dist::EndTxnMsg{round + 1ull, 1});
        }
      }
      k.run();
    }
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * sites * 8 * 4);
}
BENCHMARK(BM_NetworkDeliverNSites)->Arg(8)->Arg(64)->Arg(256);

void BM_EndToEndSingleSiteRun(benchmark::State& state) {
  // A complete single-site experiment per iteration — the unit of work
  // behind every figure data point (here: 100 PCP transactions of size 8).
  for (auto _ : state) {
    core::SystemConfig cfg;
    cfg.protocol = core::Protocol::kPriorityCeiling;
    cfg.db_objects = 200;
    cfg.workload.size_min = cfg.workload.size_max = 8;
    cfg.workload.mean_interarrival = Duration::units(50);
    cfg.workload.transaction_count = 100;
    cfg.seed = 1;
    core::System system{cfg};
    system.run_to_completion();
    benchmark::DoNotOptimize(system.metrics().committed);
  }
}
BENCHMARK(BM_EndToEndSingleSiteRun);

}  // namespace

// Same artifact flags as the figure benches (--json PATH / --csv PATH),
// translated onto google-benchmark's reporter options; this binary's JSON
// is google-benchmark's schema, not the sweep schema — it measures the
// simulator substrate, not an experiment grid.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--json" || arg == "--csv") && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back(arg == "--json" ? "--benchmark_out_format=json"
                                        : "--benchmark_out_format=csv");
    } else {
      storage.push_back(arg);
    }
  }
  // Pointers into `storage` stay valid: it is never resized after this.
  for (std::string& s : storage) args.push_back(s.data());
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
