#!/usr/bin/env bash
# Rebuilds the tree and regenerates every figure's artifacts in parallel.
#
#   bench/run_all.sh [build-dir] [extra bench flags...]
#
# Tables go to bench/out/<name>.txt, machine-readable aggregates to
# bench/out/<name>.json and bench/out/<name>.csv. All sweeps run with
# --jobs $(nproc); artifacts are identical for any job count. Extra flags
# (e.g. --runs 3) are passed to every sweep binary.
#
# Every binary runs even if an earlier one fails; the script exits
# non-zero if any of them did.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
[ "$#" -ge 1 ] && shift
out="$repo/bench/out"
jobs="$(nproc 2>/dev/null || echo 1)"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"
mkdir -p "$out"

failed=()
# Auto-discover bench binaries: regular executable files only (skips the
# CMakeFiles/ directory and any stray non-binary the build drops there).
for bin in "$build"/bench/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name =="
  if [ "$name" = micro_kernel ]; then
    # google-benchmark suite: its JSON is the benchmark schema.
    "$bin" --json "$out/$name.json" > "$out/$name.txt" || failed+=("$name")
  else
    "$bin" --quiet --jobs "$jobs" \
      --json "$out/$name.json" --csv "$out/$name.csv" "$@" \
      > "$out/$name.txt" || failed+=("$name")
  fi
done

if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "artifacts written to $out"
