// Simulated prediction vs. real hardware: the Fig-2 throughput and Fig-3
// deadline-miss sweeps run on BOTH execution backends from one binary.
//
// Every (size, protocol) cell is executed twice — once on the
// discrete-event simulation and once on the thread backend (src/rt: real
// worker threads, priority-queuing spinlock lock table, steady clock
// mapped onto simulation units) — and the tables put the two side by side.
// The question the paper's methodology leaves open is whether the
// simulated protocol ranking survives contact with physical concurrency;
// the RATIO columns answer it. Expect the thread numbers to sit below the
// simulation (OS wake latency eats into deadlines that are tens of
// simulation units long) with the protocol ORDERING preserved.
//
// The JSON artifact is the standard sweep artifact (cells keyed by the
// backend axis, header recording the hardware) plus a "comparison" section
// pairing each sim cell with its thread twin.
//
// Thread cells are physical experiments: the sweep engine runs them one at
// a time (--jobs is forced to 1) and `--runs` greatly affects wall-clock
// time. The full default (3 runs) takes on the order of a minute; CI
// smokes with --runs 1.

#include <cstdio>

#include "exp/json.hpp"
#include "params.hpp"

namespace {

using namespace rtdb;
using core::Protocol;

constexpr Protocol kProtocols[] = {Protocol::kPriorityCeiling,
                                   Protocol::kTwoPhasePriority,
                                   Protocol::kTwoPhase};
constexpr std::uint32_t kSizes[] = {4, 8, 12, 16};
constexpr const char* kBackends[] = {"sim", "threads"};

bool write_json(const std::string& path, const exp::Json& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const std::string text = root.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtdb::bench;

  exp::Options opts = exp::parse_options_or_exit(argc, argv);

  exp::SweepSpec spec;
  spec.name = "rt_shootout";
  spec.title =
      "RT shootout: Fig-2 throughput / Fig-3 miss %, simulation vs real "
      "threads";
  spec.default_runs = 3;
  for (const std::uint32_t size : kSizes) {
    for (const Protocol p : kProtocols) {
      for (const char* backend : kBackends) {
        core::SystemConfig config = fig23_config(p, size, 1);
        config.backend = backend == std::string_view{"threads"}
                             ? core::BackendKind::kThreads
                             : core::BackendKind::kSim;
        spec.add_cell({{"size", std::to_string(size)},
                       {"protocol", curve_label(p)},
                       {"backend", backend}},
                      config);
      }
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  // Cells appear in add_cell order: size-major, then protocol, then
  // backend — cell(i) pairs with cell(i + 1).
  stats::Table throughput{{"size", "C sim", "C thr", "P sim", "P thr",
                           "L sim", "L thr", "thr/sim C", "thr/sim P",
                           "thr/sim L"}};
  stats::Table missed{{"size", "C sim %", "C thr %", "P sim %", "P thr %",
                       "L sim %", "L thr %"}};
  exp::Json comparison = exp::Json::array();

  std::size_t cell = 0;
  for (const std::uint32_t size : kSizes) {
    std::vector<std::string> tp_row{std::to_string(size)};
    std::vector<std::string> tp_ratios;
    std::vector<std::string> miss_row{std::to_string(size)};
    for (const Protocol p : kProtocols) {
      const exp::CellResult& sim_cell = res.cell(cell++);
      const exp::CellResult& thr_cell = res.cell(cell++);
      const double sim_tp = sim_cell.throughput().mean;
      const double thr_tp = thr_cell.throughput().mean;
      tp_row.push_back(stats::Table::num(sim_cell.throughput()));
      tp_row.push_back(stats::Table::num(thr_cell.throughput()));
      tp_ratios.push_back(
          stats::Table::num(sim_tp > 0.0 ? thr_tp / sim_tp : 0.0));
      miss_row.push_back(stats::Table::num(sim_cell.pct_missed(), 1));
      miss_row.push_back(stats::Table::num(thr_cell.pct_missed(), 1));

      exp::Json pair = exp::Json::object();
      pair.set("size", exp::Json{static_cast<std::uint64_t>(size)});
      pair.set("protocol", exp::Json{curve_label(p)});
      pair.set("sim_throughput", exp::Json{sim_tp});
      pair.set("threads_throughput", exp::Json{thr_tp});
      pair.set("throughput_ratio",
               exp::Json{sim_tp > 0.0 ? thr_tp / sim_tp : 0.0});
      pair.set("sim_pct_missed", exp::Json{sim_cell.pct_missed().mean});
      pair.set("threads_pct_missed", exp::Json{thr_cell.pct_missed().mean});
      pair.set("threads_conformance_violations",
               exp::Json{thr_cell.mean_of("conformance_violations")});
      comparison.push_back(std::move(pair));
    }
    tp_row.insert(tp_row.end(), tp_ratios.begin(), tp_ratios.end());
    throughput.add_row(std::move(tp_row));
    missed.add_row(std::move(miss_row));
  }

  std::string caption = res.title;
  if (res.runs_per_cell > 0) {
    caption += ", " + std::to_string(res.runs_per_cell) + " runs/point";
  }
  std::fputs(throughput.to_text(caption).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(missed.to_text("deadline miss %, same cells").c_str(), stdout);
  std::fputs("\n", stdout);

  bool ok = true;
  if (opts.json_path) {
    exp::Json root = exp::artifact_json(res);
    root.set("comparison", std::move(comparison));
    ok = write_json(*opts.json_path, root) && ok;
    opts.json_path.reset();  // written here; keep write_artifacts off it
  }
  ok = exp::write_artifacts(res, opts) && ok;
  std::fflush(stdout);
  return ok ? 0 : 1;
}
