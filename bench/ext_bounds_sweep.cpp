// Extension — bound tightness across the Fig-2 load axis.
//
// Every protocol with a finite analytic blocking bound (src/analysis)
// runs the Fig-2 size sweep with bound auditing armed, on BOTH execution
// backends, and the figure reports the observed/bound ratio: how much of
// the analytic worst case the workload actually realizes. A ratio above
// 1.0 would be a bound violation (the monitor flags it and the
// bound_violations scalar records it — CI gates on zero); a ratio near
// 1.0 says the bound is tight, not merely sound. Expect the ceiling
// protocols to approach 1.0 at large sizes (a doomed attempt blocks the
// moment it arrives and waits until its watchdog kill, the exact episode
// the bound is met by) and the chain-bounded 2PL family to sit lower
// (deadlock victims restart before their deadline closes the episode).
//
// TSO and wait-die carry an Unbounded verdict and are deliberately
// absent: there is no bound to plot (run any sweep with --bounds to see
// their verdict measured but ungated).
//
// Thread cells are physical experiments (the sweep engine serializes
// them); the default 2 runs/point take on the order of a minute. CI
// smokes with --runs 1, and the j1-vs-j8 determinism gate pins
// --backend sim to keep the artifact byte-stable.

#include "params.hpp"

namespace {

using namespace rtdb;
using core::Protocol;

struct Curve {
  Protocol protocol;
  const char* label;
};

// The seven bounded families; labels follow the figure-2 convention.
constexpr Curve kCurves[] = {
    {Protocol::kPriorityCeiling, "C"},
    {Protocol::kPriorityCeilingExclusive, "Cx"},
    {Protocol::kTwoPhasePriority, "P"},
    {Protocol::kTwoPhase, "L"},
    {Protocol::kPriorityInheritance, "PIP"},
    {Protocol::kHighPriority, "HP"},
    {Protocol::kWoundWait, "WW"},
};
constexpr std::uint32_t kSizes[] = {4, 8, 12, 16, 20};
constexpr const char* kBackends[] = {"sim", "threads"};

}  // namespace

int main(int argc, char** argv) {
  using namespace rtdb::bench;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);

  exp::SweepSpec spec;
  spec.name = "ext_bounds_sweep";
  spec.title =
      "Bound tightness: observed/bound blocking ratio vs transaction "
      "size, all bounded protocols";
  spec.default_runs = 2;
  for (const std::uint32_t size : kSizes) {
    for (const Curve& curve : kCurves) {
      for (const char* backend : kBackends) {
        core::SystemConfig config = fig23_config(curve.protocol, size, 1);
        config.backend = backend == std::string_view{"threads"}
                             ? core::BackendKind::kThreads
                             : core::BackendKind::kSim;
        // The bound audit is the experiment; --bounds additionally prints
        // the per-cell theory-vs-observed table.
        config.bounds_check = true;
        spec.add_cell({{"size", std::to_string(size)},
                       {"protocol", curve.label},
                       {"backend", backend}},
                      config);
      }
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  // Cells appear in add_cell order: size-major, protocol, then backend.
  stats::Table table{{"size", "backend", "C", "Cx", "P", "L", "PIP", "HP",
                      "WW", "violations"}};
  std::size_t cell = 0;
  for (const std::uint32_t size : kSizes) {
    std::vector<std::string> rows[2] = {{std::to_string(size), "sim"},
                                        {std::to_string(size), "threads"}};
    double violations[2] = {0.0, 0.0};
    for (std::size_t p = 0; p < std::size(kCurves); ++p) {
      for (std::size_t b = 0; b < std::size(kBackends); ++b) {
        const exp::CellResult& c = res.cell(cell++);
        double bound = 0.0;
        double observed = 0.0;
        for (const core::RunResult& run : c.runs) {
          bound = run.bound_blocking_units;
          if (run.observed_max_blocking_units > observed) {
            observed = run.observed_max_blocking_units;
          }
          violations[b] += static_cast<double>(run.bound_violations);
        }
        rows[b].push_back(
            bound > 0.0 ? stats::Table::num(observed / bound, 3) : "-");
      }
    }
    for (std::size_t b = 0; b < std::size(kBackends); ++b) {
      rows[b].push_back(stats::Table::num(violations[b], 0));
      table.add_row(std::move(rows[b]));
    }
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
