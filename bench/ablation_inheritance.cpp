// Ablation — the design alternatives discussed on the road to the ceiling
// protocol (§3.1) plus the contemporaneous abort-based line of work:
//
//   2PL-P  : priority queues, no inheritance (the baseline "P")
//   2PL-PIP: basic priority inheritance — bounded inversion, but chained
//            blocking and deadlocks remain
//   PCP    : the ceiling protocol — block-at-most-once, deadlock-free
//   2PL-HP : High-Priority 2PL — wounds lower-priority conflicting holders
//   TSO    : timestamp ordering — never blocks, restarts on conflicts
//
// Together with Figures 2-3 this quantifies what each mechanism buys.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const std::uint32_t sizes[] = {4, 8, 12, 16, 20};
  const std::pair<const char*, Protocol> protocols[] = {
      {"2PL-P", Protocol::kTwoPhasePriority},
      {"2PL-PIP", Protocol::kPriorityInheritance},
      {"PCP", Protocol::kPriorityCeiling},
      {"2PL-HP", Protocol::kHighPriority},
      {"TSO", Protocol::kTimestampOrdering},
      {"2PL-WD", Protocol::kWaitDie},
      {"2PL-WW", Protocol::kWoundWait},
  };

  exp::SweepSpec spec;
  spec.name = "ablation_inheritance";
  spec.title = "Ablation: % deadline-missing by synchronization mechanism";
  spec.default_runs = kFig23Runs;
  for (const std::uint32_t size : sizes) {
    for (const auto& [label, p] : protocols) {
      spec.add_cell({{"size", std::to_string(size)}, {"protocol", label}},
                    fig23_config(p, size, 1));
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table miss{
      {"size", "2PL-P", "2PL-PIP", "PCP", "2PL-HP", "TSO", "2PL-WD", "2PL-WW"}};
  stats::Table restarts{
      {"size", "2PL-P", "2PL-PIP", "PCP", "2PL-HP", "TSO", "2PL-WD", "2PL-WW"}};
  std::size_t cell = 0;
  for (const std::uint32_t size : sizes) {
    std::vector<std::string> miss_row{std::to_string(size)};
    std::vector<std::string> restart_row{std::to_string(size)};
    for (std::size_t p = 0; p < std::size(protocols); ++p) {
      const exp::CellResult& c = res.cell(cell++);
      miss_row.push_back(stats::Table::num(c.pct_missed().mean));
      restart_row.push_back(stats::Table::num(c.mean_of("restarts"), 1));
    }
    miss.add_row(std::move(miss_row));
    restarts.add_row(std::move(restart_row));
  }
  std::fputs(miss.to_text(spec.title + ", " +
                          std::to_string(res.runs_per_cell) + " runs/point")
                 .c_str(),
             stdout);
  std::fputs("\n", stdout);
  std::fputs(
      restarts.to_text("Ablation: mean protocol-initiated restarts per run")
          .c_str(),
      stdout);
  std::fputs("\n", stdout);
  return exp::write_artifacts(res, opts) ? 0 : 1;
}
