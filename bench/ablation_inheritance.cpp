// Ablation — the design alternatives discussed on the road to the ceiling
// protocol (§3.1) plus the contemporaneous abort-based line of work:
//
//   2PL-P  : priority queues, no inheritance (the baseline "P")
//   2PL-PIP: basic priority inheritance — bounded inversion, but chained
//            blocking and deadlocks remain
//   PCP    : the ceiling protocol — block-at-most-once, deadlock-free
//   2PL-HP : High-Priority 2PL — wounds lower-priority conflicting holders
//   TSO    : timestamp ordering — never blocks, restarts on conflicts
//
// Together with Figures 2-3 this quantifies what each mechanism buys.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::ExperimentRunner;
  using core::Protocol;

  const std::uint32_t sizes[] = {4, 8, 12, 16, 20};
  const Protocol protocols[] = {
      Protocol::kTwoPhasePriority, Protocol::kPriorityInheritance,
      Protocol::kPriorityCeiling, Protocol::kHighPriority,
      Protocol::kTimestampOrdering, Protocol::kWaitDie, Protocol::kWoundWait};

  stats::Table miss{
      {"size", "2PL-P", "2PL-PIP", "PCP", "2PL-HP", "TSO", "2PL-WD", "2PL-WW"}};
  stats::Table restarts{
      {"size", "2PL-P", "2PL-PIP", "PCP", "2PL-HP", "TSO", "2PL-WD", "2PL-WW"}};
  for (const std::uint32_t size : sizes) {
    std::vector<std::string> miss_row{std::to_string(size)};
    std::vector<std::string> restart_row{std::to_string(size)};
    for (const Protocol p : protocols) {
      const auto results =
          ExperimentRunner::run_many(fig23_config(p, size, 1), kFig23Runs);
      miss_row.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(results)));
      restart_row.push_back(stats::Table::num(
          ExperimentRunner::aggregate(results,
                                      [](const core::RunResult& r) {
                                        return static_cast<double>(r.restarts);
                                      })
              .mean,
          1));
    }
    miss.add_row(std::move(miss_row));
    restarts.add_row(std::move(restart_row));
  }
  emit(miss,
       "Ablation: % deadline-missing by synchronization mechanism, "
       "10 runs/point",
       argc, argv);
  emit(restarts, "Ablation: mean protocol-initiated restarts per run", argc,
       argv);
  return 0;
}
