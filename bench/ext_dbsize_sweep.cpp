// Extension — the experiment the paper ran but omitted ("we have omitted
// the results of an experiment that varied the size of the database, and
// thus the probability of conflicts, because they only confirm ... the
// knowledge yielded by other experiments").
//
// Smaller databases mean higher conflict probability at a fixed
// transaction size; the 2PL curves should deteriorate as the database
// shrinks while the ceiling protocol stays comparatively stable —
// confirming Figures 2 and 3 from another axis.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::ExperimentRunner;
  using core::Protocol;

  const std::uint32_t db_sizes[] = {100, 200, 400, 800};
  constexpr std::uint32_t kTxnSize = 12;

  stats::Table table{{"db objects", "C thr", "P thr", "L thr", "C miss%",
                      "P miss%", "L miss%"}};
  for (const std::uint32_t db : db_sizes) {
    std::vector<std::string> thr;
    std::vector<std::string> miss;
    for (const Protocol p :
         {Protocol::kPriorityCeiling, Protocol::kTwoPhasePriority,
          Protocol::kTwoPhase}) {
      auto cfg = fig23_config(p, kTxnSize, 1);
      cfg.db_objects = db;
      const auto results = ExperimentRunner::run_many(cfg, kFig23Runs);
      thr.push_back(
          stats::Table::num(ExperimentRunner::mean_throughput(results)));
      miss.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(results)));
    }
    std::vector<std::string> row{std::to_string(db)};
    row.insert(row.end(), thr.begin(), thr.end());
    row.insert(row.end(), miss.begin(), miss.end());
    table.add_row(std::move(row));
  }
  emit(table,
       "Extension: database-size sweep at transaction size 12 (conflict "
       "probability axis), 10 runs/point",
       argc, argv);
  return 0;
}
