// Extension — the experiment the paper ran but omitted ("we have omitted
// the results of an experiment that varied the size of the database, and
// thus the probability of conflicts, because they only confirm ... the
// knowledge yielded by other experiments").
//
// Smaller databases mean higher conflict probability at a fixed
// transaction size; the 2PL curves should deteriorate as the database
// shrinks while the ceiling protocol stays comparatively stable —
// confirming Figures 2 and 3 from another axis.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const std::uint32_t db_sizes[] = {100, 200, 400, 800};
  constexpr std::uint32_t kTxnSize = 12;
  constexpr Protocol kProtocols[] = {Protocol::kPriorityCeiling,
                                     Protocol::kTwoPhasePriority,
                                     Protocol::kTwoPhase};

  exp::SweepSpec spec;
  spec.name = "ext_dbsize_sweep";
  spec.title =
      "Extension: database-size sweep at transaction size 12 (conflict "
      "probability axis)";
  spec.default_runs = kFig23Runs;
  for (const std::uint32_t db : db_sizes) {
    for (const Protocol p : kProtocols) {
      auto cfg = fig23_config(p, kTxnSize, 1);
      cfg.db_objects = db;
      spec.add_cell({{"db_objects", std::to_string(db)},
                     {"protocol", curve_label(p)}},
                    cfg);
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"db objects", "C thr", "P thr", "L thr", "C miss%",
                      "P miss%", "L miss%"}};
  std::size_t cell = 0;
  for (const std::uint32_t db : db_sizes) {
    std::vector<std::string> thr;
    std::vector<std::string> miss;
    for (std::size_t p = 0; p < std::size(kProtocols); ++p) {
      const exp::CellResult& c = res.cell(cell++);
      thr.push_back(stats::Table::num(c.throughput()));
      miss.push_back(stats::Table::num(c.pct_missed()));
    }
    std::vector<std::string> row{std::to_string(db)};
    row.insert(row.end(), thr.begin(), thr.end());
    row.insert(row.end(), miss.begin(), miss.end());
    table.add_row(std::move(row));
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
