// Extension — ceiling-manager failover. The global scheme of §4 puts every
// ceiling decision at one site; this sweep crashes exactly that site
// mid-run (with 5% message loss on top) and compares throughput with the
// failover machinery on and off. With failover, heartbeats detect the
// death, the next live site promotes itself, clients re-register their
// live transactions (the successor adopts the locks they hold), and the
// reliable control channel keeps re-registrations and releases from
// vanishing. Without it, every transaction submitted after the crash can
// only block against a dead manager until its deadline kills it.
//
// Each run ends with an invariant audit (controllers quiescent, no leaked
// mirror or lock, history checks); the `invariants` column must be 0.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  // Short vote window, as in ext_fault_sweep, so lost prepares surface as
  // coordinator timeouts instead of waiting out the deadline.
  const sim::Duration kFaultVoteTimeout = sim::Duration::units(40);

  struct FaultCell {
    const char* label;
    sim::Duration down_for;  // zero = the manager never comes back
  };
  const FaultCell kFaults[] = {
      {"crash@400", sim::Duration::zero()},
      {"crash@400+300", sim::Duration::units(300)},
  };

  exp::SweepSpec spec;
  spec.name = "ext_failover_sweep";
  spec.title =
      "Extension: global-scheme throughput when the ceiling-manager site "
      "crashes (drop 5%), failover on vs off";
  spec.default_runs = kDistRuns;

  // Fault-free reference point.
  spec.add_cell({{"failover", "n/a"}, {"fault", "none"}},
                dist_config(DistScheme::kGlobalCeiling, 0.25, 1.0, 1));
  for (const bool failover : {true, false}) {
    for (const FaultCell& fault : kFaults) {
      auto cfg = dist_config(DistScheme::kGlobalCeiling, 0.25, 1.0, 1);
      cfg.enable_failover = failover;
      cfg.faults.drop_rate = 0.05;
      cfg.faults.crashes.push_back(
          net::FaultSpec::Crash{0, sim::Duration::units(400), fault.down_for});
      cfg.commit_vote_timeout = kFaultVoteTimeout;
      spec.add_cell(
          {{"failover", failover ? "on" : "off"}, {"fault", fault.label}},
          cfg);
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"failover", "fault", "thr", "miss%", "retrans",
                      "failovers", "orphans reclaimed", "term resolved",
                      "invariants"}};
  for (std::size_t cell = 0; cell < spec.cells.size(); ++cell) {
    const exp::CellResult& c = res.cell(cell);
    table.add_row({spec.cells[cell].axes[0].second,
                   spec.cells[cell].axes[1].second,
                   stats::Table::num(c.throughput()),
                   stats::Table::num(c.pct_missed()),
                   stats::Table::num(c.mean_of("retransmissions")),
                   stats::Table::num(c.mean_of("failovers")),
                   stats::Table::num(c.mean_of("orphan_locks_reclaimed")),
                   stats::Table::num(c.mean_of("termination_resolutions")),
                   stats::Table::num(c.mean_of("invariant_violations"))});
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
