// Figure 5 — Deadline Missing Ratio (distributed).
//
// Ratio of the global ceiling approach's % deadline-missing transactions
// to the local approach's, versus communication delay, at a 50% read-only
// / 50% update transaction mix.
//
// Expected shape (paper §4): the ratio rises quickly over small delays
// (up to ~2 time units) and then more slowly, exceeding 16 — the global
// approach is more than 16 times as likely to miss deadlines.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;
  using core::ExperimentRunner;

  const double delays[] = {0, 0.5, 1, 1.5, 2, 3, 4, 6, 8, 10};

  stats::Table table{{"delay (tu)", "global miss %", "local miss %",
                      "ratio G/L"}};
  for (const double delay : delays) {
    const auto global = ExperimentRunner::run_many(
        dist_config(DistScheme::kGlobalCeiling, 0.5, delay, 1), kDistRuns);
    const auto local = ExperimentRunner::run_many(
        dist_config(DistScheme::kLocalCeiling, 0.5, delay, 1), kDistRuns);
    const double g = ExperimentRunner::mean_pct_missed(global);
    const double l = ExperimentRunner::mean_pct_missed(local);
    table.add_row({stats::Table::num(delay, 1), stats::Table::num(g),
                   stats::Table::num(l),
                   l > 0 ? stats::Table::num(g / l) : "inf"});
  }
  emit(table,
       "Fig 5: deadline-missing ratio global/local vs communication delay, "
       "50/50 mix, 5 runs/point",
       argc, argv);
  return 0;
}
