// Figure 5 — Deadline Missing Ratio (distributed).
//
// Ratio of the global ceiling approach's % deadline-missing transactions
// to the local approach's, versus communication delay, at a 50% read-only
// / 50% update transaction mix.
//
// Expected shape (paper §4): the ratio rises quickly over small delays
// (up to ~2 time units) and then more slowly, exceeding 16 — the global
// approach is more than 16 times as likely to miss deadlines.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const double delays[] = {0, 0.5, 1, 1.5, 2, 3, 4, 6, 8, 10};

  exp::SweepSpec spec;
  spec.name = "fig5_miss_ratio";
  spec.title =
      "Fig 5: deadline-missing ratio global/local vs communication delay, "
      "50/50 mix";
  spec.default_runs = kDistRuns;
  for (const double delay : delays) {
    for (const DistScheme scheme :
         {DistScheme::kGlobalCeiling, DistScheme::kLocalCeiling}) {
      spec.add_cell(
          {{"delay", stats::Table::num(delay, 1)},
           {"scheme",
            scheme == DistScheme::kGlobalCeiling ? "global" : "local"}},
          dist_config(scheme, 0.5, delay, 1));
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"delay (tu)", "global miss %", "local miss %",
                      "ratio G/L"}};
  std::size_t cell = 0;
  for (const double delay : delays) {
    const double g = res.cell(cell++).pct_missed().mean;
    const double l = res.cell(cell++).pct_missed().mean;
    table.add_row({stats::Table::num(delay, 1), stats::Table::num(g),
                   stats::Table::num(l),
                   l > 0 ? stats::Table::num(g / l) : "inf"});
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
