// Figure 4 — Transaction Throughput Ratio (distributed).
//
// Ratio of the local ceiling approach's normalized throughput to the
// global ceiling approach's, over the transaction mix (% read-only), for
// several communication delays.
//
// Expected shape (paper §4): even at zero communication delay the local
// approach wins by roughly 1.5-3x over a wide range of mixes (the
// decoupling effect of replication); the ratio grows with the
// communication delay and shrinks toward 1 as the mix approaches 100%
// read-only (fewer conflicts, fewer update round trips).

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;
  using core::ExperimentRunner;

  const double delays[] = {0, 1, 2, 5};
  const double mixes[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  stats::Table table{{"read-only %", "delay=0", "delay=1", "delay=2",
                      "delay=5"}};
  for (const double mix : mixes) {
    std::vector<std::string> row{stats::Table::num(mix * 100, 0)};
    for (const double delay : delays) {
      const auto global = ExperimentRunner::run_many(
          dist_config(DistScheme::kGlobalCeiling, mix, delay, 1), kDistRuns);
      const auto local = ExperimentRunner::run_many(
          dist_config(DistScheme::kLocalCeiling, mix, delay, 1), kDistRuns);
      const double ratio = ExperimentRunner::mean_throughput(local) /
                           ExperimentRunner::mean_throughput(global);
      row.push_back(stats::Table::num(ratio));
    }
    table.add_row(std::move(row));
  }
  emit(table,
       "Fig 4: throughput ratio local/global vs transaction mix, by "
       "communication delay (tu), 5 runs/point",
       argc, argv);
  return 0;
}
