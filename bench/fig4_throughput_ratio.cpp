// Figure 4 — Transaction Throughput Ratio (distributed).
//
// Ratio of the local ceiling approach's normalized throughput to the
// global ceiling approach's, over the transaction mix (% read-only), for
// several communication delays.
//
// Expected shape (paper §4): even at zero communication delay the local
// approach wins by roughly 1.5-3x over a wide range of mixes (the
// decoupling effect of replication); the ratio grows with the
// communication delay and shrinks toward 1 as the mix approaches 100%
// read-only (fewer conflicts, fewer update round trips).

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const double delays[] = {0, 1, 2, 5};
  const double mixes[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  exp::SweepSpec spec;
  spec.name = "fig4_throughput_ratio";
  spec.title =
      "Fig 4: throughput ratio local/global vs transaction mix, by "
      "communication delay (tu)";
  spec.default_runs = kDistRuns;
  for (const double mix : mixes) {
    for (const double delay : delays) {
      for (const DistScheme scheme :
           {DistScheme::kGlobalCeiling, DistScheme::kLocalCeiling}) {
        spec.add_cell(
            {{"read_only_pct", stats::Table::num(mix * 100, 0)},
             {"delay", stats::Table::num(delay, 1)},
             {"scheme",
              scheme == DistScheme::kGlobalCeiling ? "global" : "local"}},
            dist_config(scheme, mix, delay, 1));
      }
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"read-only %", "delay=0", "delay=1", "delay=2",
                      "delay=5"}};
  std::size_t cell = 0;
  for (const double mix : mixes) {
    std::vector<std::string> row{stats::Table::num(mix * 100, 0)};
    for (std::size_t d = 0; d < std::size(delays); ++d) {
      const exp::CellResult& global = res.cell(cell++);
      const exp::CellResult& local = res.cell(cell++);
      row.push_back(stats::Table::num(local.throughput().mean /
                                      global.throughput().mean));
    }
    table.add_row(std::move(row));
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
