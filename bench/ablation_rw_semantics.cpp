// Ablation — read/write versus exclusive lock semantics in the ceiling
// protocol. The paper's conclusion raises exactly this question: "the use
// of read and write semantics of a lock may lead to worse performance in
// terms of schedulability than the use of exclusive semantics ... Is it
// necessarily true?"
//
// PCP   = three-ceiling protocol with shared read locks (§3.2)
// PCP-X = every lock treated as exclusive (single ceiling)
//
// The read/write semantics can only pay off when read sharing exists, so
// the comparison sweeps the read-only fraction of the mix.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::ExperimentRunner;
  using core::Protocol;

  const double mixes[] = {0.0, 0.25, 0.5, 0.75, 0.9};
  constexpr std::uint32_t kTxnSize = 16;

  stats::Table table{{"read-only %", "PCP thr", "PCP-X thr", "PCP miss%",
                      "PCP-X miss%"}};
  for (const double mix : mixes) {
    std::vector<std::string> row{stats::Table::num(mix * 100, 0)};
    std::vector<std::string> miss;
    for (const Protocol p : {Protocol::kPriorityCeiling,
                             Protocol::kPriorityCeilingExclusive}) {
      auto cfg = fig23_config(p, kTxnSize, 1);
      cfg.workload.read_only_fraction = mix;
      const auto results = ExperimentRunner::run_many(cfg, kFig23Runs);
      row.push_back(
          stats::Table::num(ExperimentRunner::mean_throughput(results)));
      miss.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(results)));
    }
    row.insert(row.end(), miss.begin(), miss.end());
    table.add_row(std::move(row));
  }
  emit(table,
       "Ablation: PCP read/write semantics vs exclusive-only locks, "
       "transaction size 16, 10 runs/point",
       argc, argv);
  return 0;
}
