// Ablation — read/write versus exclusive lock semantics in the ceiling
// protocol. The paper's conclusion raises exactly this question: "the use
// of read and write semantics of a lock may lead to worse performance in
// terms of schedulability than the use of exclusive semantics ... Is it
// necessarily true?"
//
// PCP   = three-ceiling protocol with shared read locks (§3.2)
// PCP-X = every lock treated as exclusive (single ceiling)
//
// The read/write semantics can only pay off when read sharing exists, so
// the comparison sweeps the read-only fraction of the mix.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const double mixes[] = {0.0, 0.25, 0.5, 0.75, 0.9};
  constexpr std::uint32_t kTxnSize = 16;
  const std::pair<const char*, Protocol> variants[] = {
      {"PCP", Protocol::kPriorityCeiling},
      {"PCP-X", Protocol::kPriorityCeilingExclusive},
  };

  exp::SweepSpec spec;
  spec.name = "ablation_rw_semantics";
  spec.title =
      "Ablation: PCP read/write semantics vs exclusive-only locks, "
      "transaction size 16";
  spec.default_runs = kFig23Runs;
  for (const double mix : mixes) {
    for (const auto& [label, p] : variants) {
      auto cfg = fig23_config(p, kTxnSize, 1);
      cfg.workload.read_only_fraction = mix;
      spec.add_cell({{"read_only_pct", stats::Table::num(mix * 100, 0)},
                     {"protocol", label}},
                    cfg);
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"read-only %", "PCP thr", "PCP-X thr", "PCP miss%",
                      "PCP-X miss%"}};
  std::size_t cell = 0;
  for (const double mix : mixes) {
    const exp::CellResult& pcp = res.cell(cell++);
    const exp::CellResult& pcpx = res.cell(cell++);
    table.add_row({stats::Table::num(mix * 100, 0),
                   stats::Table::num(pcp.throughput()),
                   stats::Table::num(pcpx.throughput()),
                   stats::Table::num(pcp.pct_missed()),
                   stats::Table::num(pcpx.pct_missed())});
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
