#!/usr/bin/env bash
# Perf-regression gate: compares a freshly generated perf baseline (see
# perf_baseline.sh) against the committed reference and fails on any
# regression beyond the tolerance band. Wall-clock numbers are noisy, so
# the band is deliberately wide (15%); real hot-path regressions blow far
# past it, runner jitter does not.
#
#   bench/perf_check.sh <reference.json> <current.json> [tolerance-pct]
#
# Checks, per tracked sweep: txns_per_sec; per microbenchmark:
# events_per_sec. Emits a markdown delta table (to $GITHUB_STEP_SUMMARY
# when set, stdout otherwise). When the current host's core count differs
# from the reference's the comparison is meaningless — the gate then skips
# with a notice instead of failing. Requires jq.
set -euo pipefail

reference="${1:?usage: perf_check.sh <reference.json> <current.json> [tolerance-pct]}"
current="${2:?usage: perf_check.sh <reference.json> <current.json> [tolerance-pct]}"
tolerance="${3:-15}"

summary="${GITHUB_STEP_SUMMARY:-/dev/stdout}"

ref_cores="$(jq -r '.host.cores' "$reference")"
cur_cores="$(jq -r '.host.cores' "$current")"
if [ "$ref_cores" != "$cur_cores" ]; then
  {
    echo "## Perf gate: skipped"
    echo
    echo "Baseline host has $ref_cores cores, this host has $cur_cores —"
    echo "wall-clock numbers don't compare across machine classes."
    echo "Re-baseline on this runner class to re-arm the gate"
    echo "(see EXPERIMENTS.md)."
  } >> "$summary"
  echo "perf gate skipped: baseline cores=$ref_cores, host cores=$cur_cores" >&2
  exit 0
fi

# One row per tracked series: name, reference rate, current rate, delta %.
# A positive delta is a speedup. Join on name so reordering or adding
# series never misattributes a number.
table="$(jq -n --argjson tol "$tolerance" \
  --slurpfile ref "$reference" --slurpfile cur "$current" '
  def series(doc): [
    (doc.sweeps[] | {name: ("sweep " + .name), rate: .txns_per_sec}),
    (doc.micro[]  | {name: ("micro " + .name), rate: .events_per_sec})
  ];
  [ series($ref[0]) as $r | series($cur[0])[] as $c
    | ($r[] | select(.name == $c.name)) as $match
    | {name: $c.name,
       ref: $match.rate,
       cur: $c.rate,
       delta_pct: (if $match.rate > 0
                   then 100 * ($c.rate - $match.rate) / $match.rate
                   else 0 end)}
    | . + {regressed: (.delta_pct < -$tol)} ]')"

{
  echo "## Perf gate (tolerance: -${tolerance}%)"
  echo
  echo "| series | baseline /s | current /s | delta |"
  echo "|---|---:|---:|---:|"
  jq -r '.[] | "| \(.name)\(if .regressed then " ❌" else "" end) " +
    "| \(.ref | floor) | \(.cur | floor) " +
    "| \(.delta_pct * 10 | round / 10)% |"' <<<"$table"
} >> "$summary"

regressions="$(jq '[.[] | select(.regressed)] | length' <<<"$table")"
if [ "$regressions" -gt 0 ]; then
  echo "perf gate FAILED: $regressions series regressed more than ${tolerance}%:" >&2
  jq -r '.[] | select(.regressed)
    | "  \(.name): \(.ref | floor)/s -> \(.cur | floor)/s (\(.delta_pct * 10 | round / 10)%)"' \
    <<<"$table" >&2
  exit 1
fi
echo "perf gate passed: no series regressed more than ${tolerance}%" >&2
