// Extension — partition tolerance. Scheduled link cuts isolate the
// ceiling-manager site from the majority for a fixed window; the lease
// protocol fences the isolated manager (it stops extending lock sets one
// heartbeat before any successor can promote), the majority elects a new
// manager and keeps committing, and after the heal the minority adopts the
// higher term — stale-term grants are rejected client-side. On top of the
// partition axis, a 2x open-loop overload exercises deadline-aware
// admission control: transactions whose slack cannot cover the estimated
// response for their class are shed at arrival instead of dying at their
// deadlines mid-flight.
//
// Axes: scheme (global ceiling vs local-ceiling replication) x partition
// (none / heal after 300tu / heal after 700tu, cutting the manager site at
// t=400) x load (1x / 2x arrival rate). The `invariants` column must be 0:
// every run ends with the full audit (controllers quiescent, no leaked
// mirror, lease terms consistent when --check is on).

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  // Short vote window, as in the other fault sweeps: prepares lost to the
  // cut surface as coordinator timeouts instead of waiting out deadlines.
  const sim::Duration kFaultVoteTimeout = sim::Duration::units(40);

  struct PartitionCell {
    const char* label;
    sim::Duration heal_after;  // zero = no partition in this cell
  };
  const PartitionCell kPartitions[] = {
      {"none", sim::Duration::zero()},
      {"cut@400+300", sim::Duration::units(300)},
      {"cut@400+700", sim::Duration::units(700)},
  };
  struct LoadCell {
    const char* label;
    double mean_interarrival_units;
  };
  const LoadCell kLoads[] = {{"1x", 4.5}, {"2x", 2.25}};

  exp::SweepSpec spec;
  spec.name = "ext_partition_sweep";
  spec.title =
      "Extension: partition duration x arrival rate, global vs local "
      "ceiling, lease-fenced failover + admission control";
  spec.default_runs = kDistRuns;

  for (const DistScheme scheme :
       {DistScheme::kGlobalCeiling, DistScheme::kLocalCeiling}) {
    for (const PartitionCell& partition : kPartitions) {
      for (const LoadCell& load : kLoads) {
        auto cfg = dist_config(scheme, 0.25, 1.0, 1);
        cfg.workload.mean_interarrival =
            sim::Duration::from_units(load.mean_interarrival_units);
        cfg.commit_vote_timeout = kFaultVoteTimeout;
        // Deadline-aware shedding in every cell, so the load axis compares
        // admitted-transaction miss rates, not unbounded queueing collapse.
        // max_running tracks what one site CPU actually sustains (8-16tu of
        // service per transaction): admitted work runs against bounded
        // contention instead of queueing into its deadline.
        cfg.admission.enabled = true;
        cfg.admission.max_running = 4;
        cfg.admission.queue_limit = 2;
        cfg.admission.safety_factor = 2.0;
        cfg.admission.initial_estimate_per_object =
            cfg.workload.est_time_per_object;
        if (!partition.heal_after.is_zero()) {
          cfg.faults.partitions.push_back(net::FaultSpec::Partition{
              {0}, sim::Duration::units(400), partition.heal_after, true});
        }
        spec.add_cell({{"scheme", core::to_string(scheme)},
                       {"partition", partition.label},
                       {"load", load.label}},
                      cfg);
      }
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"scheme", "partition", "load", "thr", "miss%",
                      "admitted", "shed", "failovers", "lease exp",
                      "stale rej", "part drops", "invariants"}};
  for (std::size_t cell = 0; cell < spec.cells.size(); ++cell) {
    const exp::CellResult& c = res.cell(cell);
    table.add_row({spec.cells[cell].axes[0].second,
                   spec.cells[cell].axes[1].second,
                   spec.cells[cell].axes[2].second,
                   stats::Table::num(c.throughput()),
                   stats::Table::num(c.pct_missed()),
                   stats::Table::num(c.mean_of("admitted")),
                   stats::Table::num(c.mean_of("shed")),
                   stats::Table::num(c.mean_of("failovers")),
                   stats::Table::num(c.mean_of("lease_expiries")),
                   stats::Table::num(c.mean_of("stale_grants_rejected")),
                   stats::Table::num(c.mean_of("partition_drops")),
                   stats::Table::num(c.mean_of("invariant_violations"))});
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
