// Figure 2 — Transaction Throughput (single site).
//
// Normalized throughput (data objects accessed per second by successful
// transactions) versus mean transaction size for:
//   C = priority ceiling protocol
//   P = two-phase locking with priority mode
//   L = two-phase locking without priority mode
//
// Expected shape (paper §3.3): C is nearly insensitive to transaction size
// (its conflict rate is governed by ceiling blocking, which is not
// size-sensitive), while P and L degrade very rapidly once conflicts and
// deadlock-driven restarts set in at large sizes, falling below C.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::ExperimentRunner;
  using core::Protocol;

  stats::Table table{{"size", "C (PCP)", "P (2PL-prio)", "L (2PL)",
                      "C restarts", "P restarts", "L restarts"}};
  for (const std::uint32_t size : kFig23Sizes) {
    std::vector<std::string> row{std::to_string(size)};
    std::vector<std::string> restarts;
    for (const Protocol p :
         {Protocol::kPriorityCeiling, Protocol::kTwoPhasePriority,
          Protocol::kTwoPhase}) {
      const auto results =
          ExperimentRunner::run_many(fig23_config(p, size, 1), kFig23Runs);
      row.push_back(
          stats::Table::num(ExperimentRunner::mean_throughput(results)));
      restarts.push_back(stats::Table::num(
          ExperimentRunner::aggregate(results,
                                      [](const core::RunResult& r) {
                                        return static_cast<double>(r.restarts);
                                      })
              .mean,
          1));
    }
    row.insert(row.end(), restarts.begin(), restarts.end());
    table.add_row(std::move(row));
  }
  emit(table,
       "Fig 2: normalized throughput (objects/sec) vs transaction size, "
       "heavy load, 10 runs/point",
       argc, argv);
  return 0;
}
