// Figure 2 — Transaction Throughput (single site).
//
// Normalized throughput (data objects accessed per second by successful
// transactions) versus mean transaction size for:
//   C = priority ceiling protocol
//   P = two-phase locking with priority mode
//   L = two-phase locking without priority mode
//
// Expected shape (paper §3.3): C is nearly insensitive to transaction size
// (its conflict rate is governed by ceiling blocking, which is not
// size-sensitive), while P and L degrade very rapidly once conflicts and
// deadlock-driven restarts set in at large sizes, falling below C.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  constexpr Protocol kProtocols[] = {Protocol::kPriorityCeiling,
                                     Protocol::kTwoPhasePriority,
                                     Protocol::kTwoPhase};

  exp::SweepSpec spec;
  spec.name = "fig2_throughput";
  spec.title =
      "Fig 2: normalized throughput (objects/sec) vs transaction size, "
      "heavy load";
  spec.default_runs = kFig23Runs;
  for (const std::uint32_t size : kFig23Sizes) {
    for (const Protocol p : kProtocols) {
      spec.add_cell({{"size", std::to_string(size)},
                     {"protocol", curve_label(p)}},
                    fig23_config(p, size, 1));
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"size", "C (PCP)", "P (2PL-prio)", "L (2PL)",
                      "C restarts", "P restarts", "L restarts"}};
  std::size_t cell = 0;
  for (const std::uint32_t size : kFig23Sizes) {
    std::vector<std::string> row{std::to_string(size)};
    std::vector<std::string> restarts;
    for (std::size_t p = 0; p < std::size(kProtocols); ++p) {
      const exp::CellResult& c = res.cell(cell++);
      row.push_back(stats::Table::num(c.throughput()));
      restarts.push_back(stats::Table::num(c.mean_of("restarts"), 1));
    }
    row.insert(row.end(), restarts.begin(), restarts.end());
    table.add_row(std::move(row));
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
