#!/usr/bin/env bash
# Wall-clock performance baseline: times a quick (--runs 1) pass of a
# representative sweep set plus the micro_kernel suite and writes one
# BENCH_baseline.json — txns/sec per sweep (simulated transactions pushed
# through per wall-clock second, i.e. how fast the simulator itself runs)
# and events/sec per microbenchmark. CI runs this and uploads the file as
# an artifact so later PRs can show wall-clock deltas against it.
#
#   bench/perf_baseline.sh [build-dir] [output-json]
#
# Requires jq. The numbers are machine-dependent by nature; compare only
# runs from the same runner class.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
output="${2:-$repo/BENCH_baseline.json}"
jobs="$(nproc 2>/dev/null || echo 1)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Representative and quick: one single-site figure, one distributed
# figure, one ablation, and the N-site scale sweep (the control-plane
# hot path). --runs 1 keeps the whole pass under a minute.
sweeps="fig2_throughput fig4_throughput_ratio ablation_granularity ext_scale_sweep"

now() { date +%s.%N; }

entries="[]"
for name in $sweeps; do
  bin="$build/bench/$name"
  [ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 1; }
  echo "== $name ==" >&2
  start="$(now)"
  "$bin" --quiet --runs 1 --jobs "$jobs" --json "$tmp/$name.json" >/dev/null
  end="$(now)"
  wall="$(echo "$end $start" | awk '{printf "%.6f", $1 - $2}')"
  # Total simulated transactions executed across the sweep: each cell's
  # per-run arrived mean times its run count.
  txns="$(jq '[.cells[].metrics.arrived | .mean * .n] | add' "$tmp/$name.json")"
  entries="$(jq --arg name "$name" --argjson wall "$wall" --argjson txns "$txns" \
    '. + [{name: $name, wall_seconds: $wall, txns: $txns,
           txns_per_sec: (if $wall > 0 then $txns / $wall else 0 end)}]' \
    <<<"$entries")"
done

echo "== micro_kernel ==" >&2
"$build/bench/micro_kernel" --json "$tmp/micro.json" >/dev/null
# Google-benchmark schema: real_time is ns/iteration for these suites;
# events/sec = 1e9 / real_time.
micro="$(jq '[.benchmarks[]
  | select(.run_type == null or .run_type == "iteration")
  | {name: .name, ns_per_op: .real_time,
     events_per_sec: (if .real_time > 0 then 1e9 / .real_time else 0 end)}]' \
  "$tmp/micro.json")"

# Host provenance: the numbers only compare within the same machine class,
# so record what that class is. Cores are the nproc-visible count (what the
# sweep engine parallelizes over); the CPU model makes cross-host deltas
# interpretable at a glance.
cpu_model="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null)"
[ -n "$cpu_model" ] || cpu_model="unknown"

jq -n \
  --argjson sweeps "$entries" \
  --argjson micro "$micro" \
  --arg host "$(uname -sr)" \
  --arg cpu "$cpu_model" \
  --argjson cores "$(nproc 2>/dev/null || echo 1)" \
  '{schema_version: 3,
    host: {os: $host, cpu: $cpu, cores: $cores},
    sweeps: $sweeps,
    micro: $micro}' > "$output"

echo "baseline written to $output" >&2
