// Figure 3 — Percentage of Deadline Missing Transactions (single site).
//
// %missed = 100 x missed / processed, versus mean transaction size, for
// the same three protocols as Figure 2.
//
// Expected shape (paper §3.3): the 2PL curves rise sharply with size (the
// probability of deadlock grows with the fourth power of transaction
// size); the ceiling protocol's curve rises much more slowly since it has
// no deadlocks and its response time stays proportional to size and
// priority rank.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::ExperimentRunner;
  using core::Protocol;

  stats::Table table{{"size", "C (PCP) %", "P (2PL-prio) %", "L (2PL) %",
                      "C dyn-deadlocks"}};
  for (const std::uint32_t size : kFig23Sizes) {
    std::vector<std::string> row{std::to_string(size)};
    double pcp_dynamic = 0;
    for (const Protocol p :
         {Protocol::kPriorityCeiling, Protocol::kTwoPhasePriority,
          Protocol::kTwoPhase}) {
      const auto results =
          ExperimentRunner::run_many(fig23_config(p, size, 1), kFig23Runs);
      row.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(results)));
      if (p == Protocol::kPriorityCeiling) {
        pcp_dynamic = ExperimentRunner::aggregate(
                          results,
                          [](const core::RunResult& r) {
                            return static_cast<double>(r.dynamic_deadlocks);
                          })
                          .mean;
      }
    }
    row.push_back(stats::Table::num(pcp_dynamic, 2));
    table.add_row(std::move(row));
  }
  emit(table,
       "Fig 3: % deadline-missing transactions vs transaction size, "
       "heavy load, 10 runs/point",
       argc, argv);
  return 0;
}
