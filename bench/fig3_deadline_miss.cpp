// Figure 3 — Percentage of Deadline Missing Transactions (single site).
//
// %missed = 100 x missed / processed, versus mean transaction size, for
// the same three protocols as Figure 2.
//
// Expected shape (paper §3.3): the 2PL curves rise sharply with size (the
// probability of deadlock grows with the fourth power of transaction
// size); the ceiling protocol's curve rises much more slowly since it has
// no deadlocks and its response time stays proportional to size and
// priority rank.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  constexpr Protocol kProtocols[] = {Protocol::kPriorityCeiling,
                                     Protocol::kTwoPhasePriority,
                                     Protocol::kTwoPhase};

  exp::SweepSpec spec;
  spec.name = "fig3_deadline_miss";
  spec.title =
      "Fig 3: % deadline-missing transactions vs transaction size, "
      "heavy load";
  spec.default_runs = kFig23Runs;
  for (const std::uint32_t size : kFig23Sizes) {
    for (const Protocol p : kProtocols) {
      spec.add_cell({{"size", std::to_string(size)},
                     {"protocol", curve_label(p)}},
                    fig23_config(p, size, 1));
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"size", "C (PCP) %", "P (2PL-prio) %", "L (2PL) %",
                      "C dyn-deadlocks"}};
  std::size_t cell = 0;
  for (const std::uint32_t size : kFig23Sizes) {
    std::vector<std::string> row{std::to_string(size)};
    double pcp_dynamic = 0;
    for (const Protocol p : kProtocols) {
      const exp::CellResult& c = res.cell(cell++);
      row.push_back(stats::Table::num(c.pct_missed()));
      if (p == Protocol::kPriorityCeiling) {
        pcp_dynamic = c.mean_of("dynamic_deadlocks");
      }
    }
    row.push_back(stats::Table::num(pcp_dynamic, 2));
    table.add_row(std::move(row));
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
