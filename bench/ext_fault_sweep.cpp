// Extension — fault injection. The 1990 study assumed a reliable network
// and always-up sites; this sweep asks what each distributed ceiling
// scheme pays when that assumption breaks. Message loss turns 2PC prepares
// into coordinator vote timeouts (global scheme) and update propagation
// into stale replicas (local scheme); a mid-run site crash kills in-flight
// transactions and exercises presumed-abort recovery plus replica
// catch-up. All faults are drawn deterministically from the run seed, so
// the artifact stays byte-identical across --jobs N.
//
// The drop=0 cells run with an inactive FaultSpec and the default commit
// vote timeout — bit-for-bit the fault-free baseline.

#include <cstdio>

#include "params.hpp"

namespace {

std::string drop_label(double drop) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "drop=%g", drop);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const double kDropRates[] = {0.0, 0.01, 0.02, 0.05};
  constexpr DistScheme kSchemes[] = {DistScheme::kGlobalCeiling,
                                     DistScheme::kLocalCeiling};
  const auto scheme_label = [](DistScheme s) {
    return s == DistScheme::kGlobalCeiling ? "global" : "local";
  };
  // Short vote-collection window in the faulty cells so lost prepares
  // surface as coordinator timeouts instead of waiting out the deadline.
  const sim::Duration kFaultVoteTimeout = sim::Duration::units(40);

  exp::SweepSpec spec;
  spec.name = "ext_fault_sweep";
  spec.title =
      "Extension: message loss and site crashes under the distributed "
      "ceiling schemes (comm delay 1tu, 25% read-only)";
  spec.default_runs = kDistRuns;

  std::vector<std::string> fault_labels;
  for (const DistScheme scheme : kSchemes) {
    for (const double drop : kDropRates) {
      auto cfg = dist_config(scheme, 0.25, 1.0, 1);
      cfg.faults.drop_rate = drop;
      if (cfg.faults.active()) cfg.commit_vote_timeout = kFaultVoteTimeout;
      spec.add_cell(
          {{"scheme", scheme_label(scheme)}, {"fault", drop_label(drop)}},
          cfg);
      if (scheme == kSchemes[0]) fault_labels.push_back(drop_label(drop));
    }
    // One fail-stop outage: site 2 dies at 400tu, restarts 300tu later and
    // catches its replicas up.
    auto cfg = dist_config(scheme, 0.25, 1.0, 1);
    cfg.faults.crashes.push_back(net::FaultSpec::Crash{
        2, sim::Duration::units(400), sim::Duration::units(300)});
    cfg.commit_vote_timeout = kFaultVoteTimeout;
    spec.add_cell(
        {{"scheme", scheme_label(scheme)}, {"fault", "crash@400+300"}}, cfg);
    if (scheme == kSchemes[0]) fault_labels.push_back("crash@400+300");
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"scheme", "fault", "thr", "miss%", "drops",
                      "2pc aborts", "vote t/o", "presumed", "crash kills",
                      "recovered"}};
  std::size_t cell = 0;
  for (const DistScheme scheme : kSchemes) {
    for (const std::string& fault : fault_labels) {
      const exp::CellResult& c = res.cell(cell++);
      table.add_row({scheme_label(scheme), fault,
                     stats::Table::num(c.throughput()),
                     stats::Table::num(c.pct_missed()),
                     stats::Table::num(c.mean_of("fault_drops")),
                     stats::Table::num(c.mean_of("commit_aborts")),
                     stats::Table::num(c.mean_of("vote_timeouts")),
                     stats::Table::num(c.mean_of("presumed_aborts")),
                     stats::Table::num(c.mean_of("crash_kills")),
                     stats::Table::num(c.mean_of("versions_recovered"))});
    }
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
