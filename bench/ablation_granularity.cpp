// Ablation — locking granularity, the configuration knob the paper's UI
// exposes ("database at each site with user defined structure, size,
// granularity"). Coarser granules mean fewer lock operations but more
// false conflicts; under the ceiling protocol they additionally raise the
// effective ceilings (more transactions declare each granule).
//
// Swept at the Figure 2/3 workload's size-12 point.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const std::uint32_t granularities[] = {1, 2, 5, 10, 25};
  constexpr std::uint32_t kTxnSize = 12;
  constexpr Protocol kProtocols[] = {Protocol::kPriorityCeiling,
                                     Protocol::kTwoPhasePriority};

  exp::SweepSpec spec;
  spec.name = "ablation_granularity";
  spec.title =
      "Ablation: locking granularity at transaction size 12 (db 200)";
  spec.default_runs = kFig23Runs;
  for (const std::uint32_t granularity : granularities) {
    for (const Protocol p : kProtocols) {
      auto cfg = fig23_config(p, kTxnSize, 1);
      cfg.lock_granularity = granularity;
      spec.add_cell({{"granularity", std::to_string(granularity)},
                     {"protocol", curve_label(p)}},
                    cfg);
    }
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"objects/granule", "granules", "C thr", "P thr",
                      "C miss%", "P miss%", "P restarts"}};
  std::size_t cell = 0;
  for (const std::uint32_t granularity : granularities) {
    const exp::CellResult& c = res.cell(cell++);
    const exp::CellResult& p = res.cell(cell++);
    table.add_row({std::to_string(granularity),
                   std::to_string((200 + granularity - 1) / granularity),
                   stats::Table::num(c.throughput()),
                   stats::Table::num(p.throughput()),
                   stats::Table::num(c.pct_missed()),
                   stats::Table::num(p.pct_missed()),
                   stats::Table::num(p.mean_of("restarts"), 1)});
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
