// Ablation — locking granularity, the configuration knob the paper's UI
// exposes ("database at each site with user defined structure, size,
// granularity"). Coarser granules mean fewer lock operations but more
// false conflicts; under the ceiling protocol they additionally raise the
// effective ceilings (more transactions declare each granule).
//
// Swept at the Figure 2/3 workload's size-12 point.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::ExperimentRunner;
  using core::Protocol;

  const std::uint32_t granularities[] = {1, 2, 5, 10, 25};
  constexpr std::uint32_t kTxnSize = 12;

  stats::Table table{{"objects/granule", "granules", "C thr", "P thr",
                      "C miss%", "P miss%", "P restarts"}};
  for (const std::uint32_t granularity : granularities) {
    std::vector<std::string> thr;
    std::vector<std::string> miss;
    std::string restarts;
    for (const Protocol p :
         {Protocol::kPriorityCeiling, Protocol::kTwoPhasePriority}) {
      auto cfg = fig23_config(p, kTxnSize, 1);
      cfg.lock_granularity = granularity;
      const auto results = ExperimentRunner::run_many(cfg, kFig23Runs);
      thr.push_back(
          stats::Table::num(ExperimentRunner::mean_throughput(results)));
      miss.push_back(
          stats::Table::num(ExperimentRunner::mean_pct_missed(results)));
      if (p == Protocol::kTwoPhasePriority) {
        restarts = stats::Table::num(
            ExperimentRunner::aggregate(results,
                                        [](const core::RunResult& r) {
                                          return static_cast<double>(r.restarts);
                                        })
                .mean,
            1);
      }
    }
    std::vector<std::string> row{
        std::to_string(granularity),
        std::to_string((200 + granularity - 1) / granularity)};
    row.push_back(thr[0]);
    row.push_back(thr[1]);
    row.push_back(miss[0]);
    row.push_back(miss[1]);
    row.push_back(restarts);
    table.add_row(std::move(row));
  }
  emit(table,
       "Ablation: locking granularity at transaction size 12 (db 200), "
       "10 runs/point",
       argc, argv);
  return 0;
}
