// Extension — scale-out control plane. N-site topologies under constant
// per-site load compare the three distribution schemes' control planes:
// the global ceiling manager (one serialization point, every acquire a
// round trip to site 0), local-ceiling replication (no remote locking but
// every update write fanned out to all N sites), and the partitioned
// scheme (DPCP-style: the object space sharded across per-shard ceiling
// managers, control traffic spread over min(N, 8) sites). Zipfian skew
// concentrates accesses on a few hot ranks — with the hash partitioner the
// hot keys still spread across shards, which is exactly the contrast with
// the global scheme's single queue. Message batching (1tu window) is on in
// every cell, so the batched/flushes columns show the coalescing the
// control plane gets at high site counts.
//
// Axes: scheme (global / local / partitioned) x sites (8 / 32) x skew
// (uniform / zipf 0.9), plus two read-heavy cells (mix 0.75, 32 sites,
// zipf) and two chaos cells (1% drops + a mid-run crash of site 1, 32
// sites, zipf) for the remote-locking schemes. The `invariants` column
// must be 0 in every cell, chaos included.

#include "params.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using namespace rtdb::bench;
  using core::DistScheme;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const std::uint32_t kSites[] = {8, 32};
  struct SkewCell {
    const char* label;
    double theta;
  };
  const SkewCell kSkews[] = {{"uniform", 0.0}, {"zipf0.9", 0.9}};

  exp::SweepSpec spec;
  spec.name = "ext_scale_sweep";
  spec.title =
      "Extension: site count x access skew, global vs local vs partitioned "
      "ceiling, batched control plane";
  spec.default_runs = kScaleRuns;

  for (const DistScheme scheme :
       {DistScheme::kGlobalCeiling, DistScheme::kLocalCeiling,
        DistScheme::kPartitionedCeiling}) {
    for (const std::uint32_t sites : kSites) {
      for (const SkewCell& skew : kSkews) {
        spec.add_cell({{"scheme", core::to_string(scheme)},
                       {"sites", std::to_string(sites)},
                       {"skew", skew.label},
                       {"mix", "rw0.25"},
                       {"fault", "none"}},
                      scale_config(scheme, sites, skew.theta, 1));
      }
    }
  }
  // Read-heavy contrast at the largest skewed point: remote reads dominate
  // under the partitioned placement, local reads under the global one.
  for (const DistScheme scheme :
       {DistScheme::kGlobalCeiling, DistScheme::kPartitionedCeiling}) {
    auto cfg = scale_config(scheme, 32, 0.9, 1);
    cfg.workload.read_only_fraction = 0.75;
    spec.add_cell({{"scheme", core::to_string(scheme)},
                   {"sites", "32"},
                   {"skew", "zipf0.9"},
                   {"mix", "rw0.75"},
                   {"fault", "none"}},
                  cfg);
  }
  // Chaos at scale: message loss plus a mid-run crash of a manager-hosting
  // site. Under the partitioned scheme site 1 hosts shard 1's manager, so
  // the crash exercises one shard's lease-fenced failover while the other
  // shards keep granting.
  for (const DistScheme scheme :
       {DistScheme::kGlobalCeiling, DistScheme::kPartitionedCeiling}) {
    auto cfg = scale_config(scheme, 32, 0.9, 1);
    cfg.commit_vote_timeout = sim::Duration::units(40);
    cfg.faults.drop_rate = 0.01;
    cfg.faults.crashes.push_back(net::FaultSpec::Crash{
        1, sim::Duration::units(150), sim::Duration::units(200)});
    spec.add_cell({{"scheme", core::to_string(scheme)},
                   {"sites", "32"},
                   {"skew", "zipf0.9"},
                   {"mix", "rw0.25"},
                   {"fault", "drop1%+crash1"}},
                  cfg);
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"scheme", "sites", "skew", "mix", "fault", "thr",
                      "miss%", "batched", "flushes", "migrations",
                      "failovers", "invariants"}};
  for (std::size_t cell = 0; cell < spec.cells.size(); ++cell) {
    const exp::CellResult& c = res.cell(cell);
    table.add_row({spec.cells[cell].axes[0].second,
                   spec.cells[cell].axes[1].second,
                   spec.cells[cell].axes[2].second,
                   spec.cells[cell].axes[3].second,
                   spec.cells[cell].axes[4].second,
                   stats::Table::num(c.throughput()),
                   stats::Table::num(c.pct_missed()),
                   stats::Table::num(c.mean_of("batched_messages")),
                   stats::Table::num(c.mean_of("batch_flushes")),
                   stats::Table::num(c.mean_of("shard_migrations")),
                   stats::Table::num(c.mean_of("failovers")),
                   stats::Table::num(c.mean_of("invariant_violations"))});
  }
  return exp::emit(res, table, opts) ? 0 : 1;
}
