#pragma once

// Canonical experiment parameters for the paper reproduction. Every bench
// binary takes its configuration from here so EXPERIMENTS.md can reference
// one source of truth.
//
// Units: 1 time unit (tu) = 1 ms of virtual time; throughput is data
// objects accessed per second by committed transactions (the paper's
// normalized throughput).

#include <cstdio>
#include <string>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "exp/artifacts.hpp"
#include "exp/cli.hpp"
#include "exp/sweep.hpp"
#include "stats/table.hpp"

namespace rtdb::bench {

// ---- Figures 2 and 3: single-site size sweep ----
//
// Heavy load: the CPU saturates as the mean transaction size approaches 20
// (cpu 2tu/object at one arrival per 50tu ~ 80% raw utilization at size
// 20, before any restart waste). I/O is one parallel-disk access per
// object read plus one per committed write. Deadlines are proportional to
// size ("set in proportion to its size and system workload"). 400
// transactions per run, 10 seeded runs averaged per point.
inline core::SystemConfig fig23_config(core::Protocol protocol,
                                       std::uint32_t size,
                                       std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.db_objects = 200;
  cfg.cpu_per_object = sim::Duration::units(2);
  cfg.io_per_object = sim::Duration::units(1);
  // Plain 2PL resolves deadlocks the classic way (abort the requester that
  // closed the cycle); the priority-mode variant picks the least urgent.
  cfg.victim_policy = protocol == core::Protocol::kTwoPhase
                          ? cc::TwoPhaseLocking::VictimPolicy::kRequester
                          : cc::TwoPhaseLocking::VictimPolicy::kLowestPriority;
  cfg.workload.size_min = size;
  cfg.workload.size_max = size;
  cfg.workload.mean_interarrival = sim::Duration::units(50);
  cfg.workload.transaction_count = 400;
  cfg.workload.slack_min = 15;
  cfg.workload.slack_max = 30;
  cfg.workload.est_time_per_object = sim::Duration::units(4);
  cfg.workload.read_only_fraction = 0.0;  // update transactions
  cfg.seed = seed;
  return cfg;
}

inline constexpr std::uint32_t kFig23Sizes[] = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
inline constexpr int kFig23Runs = 10;

// ---- Figures 4, 5 and 6: distributed global vs local ceiling ----
//
// Three fully interconnected sites, memory-resident database (no I/O
// cost), transactions of 4-8 objects, one arrival per 4tu system-wide.
// 300 transactions per run, 5 seeded runs averaged per point (the
// distributed runs are an order of magnitude more expensive than the
// single-site ones).
inline core::SystemConfig dist_config(core::DistScheme scheme,
                                      double read_only_fraction,
                                      double comm_delay_units,
                                      std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = sim::Duration::units(2);
  cfg.io_per_object = sim::Duration::zero();
  cfg.comm_delay = sim::Duration::from_units(comm_delay_units);
  cfg.workload.size_min = 4;
  cfg.workload.size_max = 8;
  cfg.workload.mean_interarrival = sim::Duration::from_units(4.5);
  cfg.workload.read_only_fraction = read_only_fraction;
  cfg.workload.transaction_count = 300;
  cfg.workload.slack_min = 3.5;
  cfg.workload.slack_max = 7;
  cfg.workload.est_time_per_object = sim::Duration::units(3);
  cfg.seed = seed;
  return cfg;
}

inline constexpr int kDistRuns = 5;

// ---- Scale-out extension: N-site skewed-workload sweep ----
//
// The scale axis holds the offered load constant while the cluster (and
// the database on it) grows — strong scaling. A scheme whose control
// plane scales shows a flat throughput curve across the site axis; the
// global scheme's single serialization point shows up as the curve that
// falls away, because every added site is another remote client funneling
// its whole lock traffic through one manager. Zipfian skew concentrates
// accesses on a few hot ranks (workload.zipf_theta), eroding the
// partitioned scheme's advantage at small scale (the hot shard is its own
// funnel); batching is on (1tu window, well under the heartbeat interval)
// so the control plane coalesces at high site counts.
inline core::SystemConfig scale_config(core::DistScheme scheme,
                                       std::uint32_t sites, double zipf_theta,
                                       std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.sites = sites;
  cfg.db_objects = 20 * sites;
  cfg.cpu_per_object = sim::Duration::units(2);
  cfg.io_per_object = sim::Duration::zero();
  cfg.comm_delay = sim::Duration::units(1);
  cfg.batch_window = sim::Duration::units(1);
  cfg.workload.size_min = 4;
  cfg.workload.size_max = 8;
  // 0.3 transactions per unit system-wide, independent of the site count;
  // the batch grows with the cluster so larger grids run long enough to
  // reach the steady-state queueing the schemes differ on.
  cfg.workload.mean_interarrival = sim::Duration::from_units(10.0 / 3.0);
  cfg.workload.read_only_fraction = 0.25;
  cfg.workload.transaction_count = 30 * sites;
  cfg.workload.zipf_theta = zipf_theta;
  cfg.workload.slack_min = 3.5;
  cfg.workload.slack_max = 7;
  cfg.workload.est_time_per_object = sim::Duration::units(3);
  cfg.seed = seed;
  return cfg;
}

inline constexpr int kScaleRuns = 3;

// Every bench binary runs its grid through the parallel sweep engine
// (exp::run_sweep) and finishes with exp::emit: figure table on stdout,
// JSON/CSV artifacts per the shared CLI (exp::parse_options_or_exit).
// The short protocol labels used as axis values throughout the figures:
inline const char* curve_label(core::Protocol p) {
  switch (p) {
    case core::Protocol::kPriorityCeiling:
      return "C";
    case core::Protocol::kTwoPhasePriority:
      return "P";
    case core::Protocol::kTwoPhase:
      return "L";
    default:
      return core::to_string(p);
  }
}

}  // namespace rtdb::bench
