// Custom experiment — the command-line counterpart of the prototyping
// environment's menu-driven User Interface: "a user can specify the system
// configuration, database configuration, load characteristics, and
// concurrency control" without recompiling.
//
//   $ ./custom_experiment --protocol=PCP --size=16 --inter=50 --runs=10
//   $ ./custom_experiment --scheme=local --sites=3 --delay=2 --ro=0.5
//   $ ./custom_experiment --help
//
// Prints the run-averaged metrics for the configured cell.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"

namespace {

using namespace rtdb;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --protocol=P   2PL | 2PL-P | PCP | PCP-X | 2PL-PIP | 2PL-HP | TSO |\n"
      "                 2PL-WD | 2PL-WW\n"
      "  --scheme=S     single | global | local        (default single)\n"
      "  --sites=N      site count for distributed schemes (default 3)\n"
      "  --db=N         database size in objects        (default 200)\n"
      "  --size=N       objects per transaction         (default 8)\n"
      "  --count=N      transactions per run            (default 400)\n"
      "  --inter=T      mean interarrival, time units   (default 50)\n"
      "  --ro=F         read-only fraction 0..1         (default 0)\n"
      "  --cpu=T        CPU time units per object       (default 2)\n"
      "  --io=T         I/O time units per object       (default 1)\n"
      "  --delay=T      communication delay, time units (default 0)\n"
      "  --slack=A,B    deadline slack factor range     (default 15,30)\n"
      "  --runs=N       seeded runs to average          (default 10)\n"
      "  --seed=N       base seed                       (default 1)\n",
      argv0);
  std::exit(2);
}

bool parse_protocol(const std::string& name, core::Protocol* out) {
  const std::pair<const char*, core::Protocol> table[] = {
      {"2PL", core::Protocol::kTwoPhase},
      {"2PL-P", core::Protocol::kTwoPhasePriority},
      {"PCP", core::Protocol::kPriorityCeiling},
      {"PCP-X", core::Protocol::kPriorityCeilingExclusive},
      {"2PL-PIP", core::Protocol::kPriorityInheritance},
      {"2PL-HP", core::Protocol::kHighPriority},
      {"TSO", core::Protocol::kTimestampOrdering},
      {"2PL-WD", core::Protocol::kWaitDie},
      {"2PL-WW", core::Protocol::kWoundWait},
  };
  for (const auto& [key, value] : table) {
    if (name == key) {
      *out = value;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  core::SystemConfig cfg;
  cfg.db_objects = 200;
  cfg.cpu_per_object = sim::Duration::units(2);
  cfg.io_per_object = sim::Duration::units(1);
  cfg.workload.size_min = cfg.workload.size_max = 8;
  cfg.workload.transaction_count = 400;
  cfg.workload.mean_interarrival = sim::Duration::units(50);
  cfg.workload.slack_min = 15;
  cfg.workload.slack_max = 30;
  cfg.workload.est_time_per_object = sim::Duration::units(4);
  cfg.sites = 1;
  int runs = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--protocol=")) {
      if (!parse_protocol(v, &cfg.protocol)) usage(argv[0]);
    } else if (const char* v = value("--scheme=")) {
      const std::string s = v;
      if (s == "single") {
        cfg.scheme = core::DistScheme::kSingleSite;
      } else if (s == "global") {
        cfg.scheme = core::DistScheme::kGlobalCeiling;
      } else if (s == "local") {
        cfg.scheme = core::DistScheme::kLocalCeiling;
      } else {
        usage(argv[0]);
      }
      if (cfg.scheme != core::DistScheme::kSingleSite && cfg.sites < 2) {
        cfg.sites = 3;
      }
    } else if (const char* v = value("--sites=")) {
      cfg.sites = static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = value("--db=")) {
      cfg.db_objects = static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = value("--size=")) {
      cfg.workload.size_min = cfg.workload.size_max =
          static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = value("--count=")) {
      cfg.workload.transaction_count =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char* v = value("--inter=")) {
      cfg.workload.mean_interarrival = sim::Duration::from_units(std::atof(v));
    } else if (const char* v = value("--ro=")) {
      cfg.workload.read_only_fraction = std::atof(v);
    } else if (const char* v = value("--cpu=")) {
      cfg.cpu_per_object = sim::Duration::from_units(std::atof(v));
    } else if (const char* v = value("--io=")) {
      cfg.io_per_object = sim::Duration::from_units(std::atof(v));
    } else if (const char* v = value("--delay=")) {
      cfg.comm_delay = sim::Duration::from_units(std::atof(v));
    } else if (const char* v = value("--slack=")) {
      if (std::sscanf(v, "%lf,%lf", &cfg.workload.slack_min,
                      &cfg.workload.slack_max) != 2) {
        usage(argv[0]);
      }
    } else if (const char* v = value("--runs=")) {
      runs = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      usage(argv[0]);
    }
  }
  // The distributed memory-resident experiments skip I/O by convention.
  if (cfg.scheme != core::DistScheme::kSingleSite) {
    cfg.io_per_object = sim::Duration::zero();
  }

  const auto results = core::ExperimentRunner::run_many(cfg, runs);
  std::printf("cell: protocol=%s scheme=%s sites=%u db=%u size=%u-%u "
              "inter=%.1ftu ro=%.0f%% delay=%.1ftu runs=%d\n",
              core::to_string(cfg.protocol), core::to_string(cfg.scheme),
              cfg.sites, cfg.db_objects, cfg.workload.size_min,
              cfg.workload.size_max,
              cfg.workload.mean_interarrival.as_units(),
              cfg.workload.read_only_fraction * 100,
              cfg.comm_delay.as_units(), runs);
  const auto thr = core::ExperimentRunner::aggregate(
      results, [](const core::RunResult& r) {
        return r.metrics.throughput_objects_per_sec;
      });
  const auto miss = core::ExperimentRunner::aggregate(
      results, [](const core::RunResult& r) { return r.metrics.pct_missed; });
  const auto restarts = core::ExperimentRunner::aggregate(
      results,
      [](const core::RunResult& r) { return static_cast<double>(r.restarts); });
  std::printf("throughput : %.2f obj/s (stddev %.2f, min %.2f, max %.2f)\n",
              thr.mean, thr.stddev, thr.min, thr.max);
  std::printf("missed     : %.2f %% (stddev %.2f)\n", miss.mean, miss.stddev);
  std::printf("restarts   : %.1f per run\n", restarts.mean);
  return 0;
}
