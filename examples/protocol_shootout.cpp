// Protocol shootout — one table comparing every synchronization protocol
// in the library on the same single-site real-time workload; the
// programmatic version of flipping the prototyping environment's
// "concurrency control" menu entry.
//
// Columns show the paper's two headline measures plus the mechanisms at
// work: blocking, protocol-initiated restarts, and (for the ceiling
// protocol) denials on unlocked objects — the "insurance premium".

#include <cstdio>

#include "core/experiment.hpp"
#include "stats/table.hpp"

int main() {
  using namespace rtdb;
  using core::ExperimentRunner;
  using core::Protocol;

  const Protocol protocols[] = {
      Protocol::kTwoPhase,           Protocol::kTwoPhasePriority,
      Protocol::kPriorityInheritance, Protocol::kHighPriority,
      Protocol::kTimestampOrdering,  Protocol::kWaitDie,
      Protocol::kWoundWait,          Protocol::kPriorityCeiling,
      Protocol::kPriorityCeilingExclusive,
  };

  stats::Table table{{"protocol", "thr obj/s", "miss %", "restarts",
                      "ceiling denials", "mean blocked tu"}};
  for (const Protocol protocol : protocols) {
    core::SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.db_objects = 200;
    cfg.cpu_per_object = sim::Duration::units(2);
    cfg.io_per_object = sim::Duration::units(1);
    cfg.victim_policy = protocol == Protocol::kTwoPhase
                            ? cc::TwoPhaseLocking::VictimPolicy::kRequester
                            : cc::TwoPhaseLocking::VictimPolicy::kLowestPriority;
    cfg.workload.transaction_count = 400;
    cfg.workload.size_min = 14;
    cfg.workload.size_max = 14;
    cfg.workload.mean_interarrival = sim::Duration::units(50);
    cfg.workload.slack_min = 15;
    cfg.workload.slack_max = 30;
    cfg.workload.est_time_per_object = sim::Duration::units(4);
    cfg.workload.read_only_fraction = 0.25;
    cfg.seed = 1;
    const auto results = ExperimentRunner::run_many(cfg, 5);
    table.add_row({
        std::string{core::to_string(protocol)},
        stats::Table::num(ExperimentRunner::mean_throughput(results)),
        stats::Table::num(ExperimentRunner::mean_pct_missed(results)),
        stats::Table::num(
            ExperimentRunner::aggregate(results,
                                        [](const core::RunResult& r) {
                                          return static_cast<double>(r.restarts);
                                        })
                .mean,
            1),
        stats::Table::num(
            ExperimentRunner::aggregate(results,
                                        [](const core::RunResult& r) {
                                          return static_cast<double>(
                                              r.ceiling_denials);
                                        })
                .mean,
            1),
        stats::Table::num(
            ExperimentRunner::aggregate(results,
                                        [](const core::RunResult& r) {
                                          return r.metrics.avg_blocked_units;
                                        })
                .mean,
            1),
    });
  }
  std::fputs(table
                 .to_text("Protocol shootout: 400 transactions of size 14, "
                          "25% read-only, heavy load, 5 runs each")
                 .c_str(),
             stdout);
  std::fputs(
      "\nBlocking-based protocols pay with blocked time, abort-based ones\n"
      "with restarts; the ceiling protocol trades some unnecessary blocking\n"
      "(denials on unlocked objects) for freedom from deadlock.\n",
      stdout);
  return 0;
}
