// Protocol shootout — one table comparing every synchronization protocol
// in the library on the same single-site real-time workload; the
// programmatic version of flipping the prototyping environment's
// "concurrency control" menu entry.
//
// Columns show the paper's two headline measures plus the mechanisms at
// work: blocking, protocol-initiated restarts, and (for the ceiling
// protocol) denials on unlocked objects — the "insurance premium".
//
// Runs on the parallel sweep engine and takes the shared bench CLI
// (--runs/--seed/--jobs/--json/--csv).

#include <cstdio>

#include "core/experiment.hpp"
#include "exp/artifacts.hpp"
#include "exp/cli.hpp"
#include "exp/sweep.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace rtdb;
  using core::Protocol;

  const exp::Options opts = exp::parse_options_or_exit(argc, argv);
  const Protocol protocols[] = {
      Protocol::kTwoPhase,           Protocol::kTwoPhasePriority,
      Protocol::kPriorityInheritance, Protocol::kHighPriority,
      Protocol::kTimestampOrdering,  Protocol::kWaitDie,
      Protocol::kWoundWait,          Protocol::kPriorityCeiling,
      Protocol::kPriorityCeilingExclusive,
  };

  exp::SweepSpec spec;
  spec.name = "protocol_shootout";
  spec.title =
      "Protocol shootout: 400 transactions of size 14, 25% read-only, "
      "heavy load";
  spec.default_runs = 5;
  for (const Protocol protocol : protocols) {
    core::SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.db_objects = 200;
    cfg.cpu_per_object = sim::Duration::units(2);
    cfg.io_per_object = sim::Duration::units(1);
    cfg.victim_policy = protocol == Protocol::kTwoPhase
                            ? cc::TwoPhaseLocking::VictimPolicy::kRequester
                            : cc::TwoPhaseLocking::VictimPolicy::kLowestPriority;
    cfg.workload.transaction_count = 400;
    cfg.workload.size_min = 14;
    cfg.workload.size_max = 14;
    cfg.workload.mean_interarrival = sim::Duration::units(50);
    cfg.workload.slack_min = 15;
    cfg.workload.slack_max = 30;
    cfg.workload.est_time_per_object = sim::Duration::units(4);
    cfg.workload.read_only_fraction = 0.25;
    cfg.seed = 1;
    spec.add_cell({{"protocol", core::to_string(protocol)}}, cfg);
  }

  const exp::SweepResult res = exp::run_sweep(spec, opts);

  stats::Table table{{"protocol", "thr obj/s", "miss %", "restarts",
                      "ceiling denials", "mean blocked tu"}};
  for (std::size_t i = 0; i < std::size(protocols); ++i) {
    const exp::CellResult& c = res.cell(i);
    table.add_row({
        std::string{core::to_string(protocols[i])},
        stats::Table::num(c.throughput()),
        stats::Table::num(c.pct_missed()),
        stats::Table::num(c.mean_of("restarts"), 1),
        stats::Table::num(c.mean_of("ceiling_denials"), 1),
        stats::Table::num(c.mean_of("avg_blocked_units"), 1),
    });
  }
  const bool ok = exp::emit(res, table, opts);
  std::fputs(
      "\nBlocking-based protocols pay with blocked time, abort-based ones\n"
      "with restarts; the ceiling protocol trades some unnecessary blocking\n"
      "(denials on unlocked objects) for freedom from deadlock.\n",
      stdout);
  return ok ? 0 : 1;
}
