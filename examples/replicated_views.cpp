// Replicated views — §4 side by side: the global ceiling manager versus
// local ceiling managers over replicated data, on the same workload, with
// the consistency/timeliness trade made visible.
//
// The global scheme keeps every copy identical (synchronous updates under
// global locks) but holds locks across the network; the local scheme
// commits locally and ships updates afterwards, so remote views lag. This
// example measures both sides of that trade: deadline behaviour and the
// observed staleness of replicas, including a §4-style temporally
// consistent read using the multi-version store.

#include <cstdio>

#include "core/system.hpp"

static rtdb::core::SystemConfig base_config() {
  using namespace rtdb;
  core::SystemConfig cfg;
  cfg.sites = 3;
  cfg.db_objects = 60;
  cfg.cpu_per_object = sim::Duration::units(2);
  cfg.io_per_object = sim::Duration::zero();
  cfg.comm_delay = sim::Duration::units(2);
  cfg.keep_version_history = true;
  cfg.workload.transaction_count = 400;
  cfg.workload.read_only_fraction = 0.5;
  cfg.workload.size_min = 4;
  cfg.workload.size_max = 8;
  cfg.workload.mean_interarrival = sim::Duration::from_units(4.5);
  cfg.workload.slack_min = 3.5;
  cfg.workload.slack_max = 7;
  cfg.workload.est_time_per_object = sim::Duration::units(3);
  cfg.seed = 3;
  return cfg;
}

int main() {
  using namespace rtdb;

  std::printf("== global vs local ceiling on one workload (3 sites, comm "
              "delay 2tu) ==\n\n");

  for (const core::DistScheme scheme :
       {core::DistScheme::kGlobalCeiling, core::DistScheme::kLocalCeiling}) {
    auto cfg = base_config();
    cfg.scheme = scheme;
    core::System system{cfg};
    system.run_to_completion();
    const auto m = system.metrics();
    std::printf("%-15s: %5.1f obj/s, %5.1f%% missed, %llu committed\n",
                core::to_string(scheme), m.throughput_objects_per_sec,
                m.pct_missed, (unsigned long long)m.committed);

    if (scheme == core::DistScheme::kLocalCeiling) {
      std::printf("\n  replica staleness while running (local scheme):\n");
      for (net::SiteId s = 0; s < 3; ++s) {
        const auto& rep = *system.site(s).replication;
        std::printf("    site %u: mean lag %.1ftu, max lag %.1ftu, "
                    "%llu updates applied\n",
                    s, rep.mean_lag().as_units(), rep.max_lag().as_units(),
                    (unsigned long long)rep.updates_applied());
      }
      // §4's remedy for applications needing temporal consistency: with
      // multiple versions kept, a reader can ask for the state of several
      // objects "as of" one instant even though they were updated at
      // different times by different stations.
      const auto* versions = system.site(1).rm->version_history();
      const sim::TimePoint when =
          sim::TimePoint::origin() + sim::Duration::units(500);
      std::printf("\n  temporally consistent view at t=500tu from site 1:\n");
      for (db::ObjectId o = 0; o < 3; ++o) {
        const db::Version& v = versions->read_at(o, when);
        std::printf("    object %u: version %llu written at %.1ftu by T%llu\n",
                    o, (unsigned long long)v.sequence,
                    v.written_at.as_units(),
                    (unsigned long long)v.writer.value);
      }
    } else {
      // The global scheme's selling point: after the run every copy of
      // every object is identical.
      bool identical = true;
      for (db::ObjectId o = 0; o < system.schema().object_count(); ++o) {
        for (net::SiteId s = 1; s < 3; ++s) {
          if (!(system.site(s).rm->current(o) ==
                system.site(0).rm->current(o))) {
            identical = false;
          }
        }
      }
      std::printf("  all copies identical after drain: %s\n\n",
                  identical ? "yes" : "NO");
    }
  }

  std::printf(
      "\nThe local scheme trades bounded staleness (≈ the communication\n"
      "delay) for dramatically better deadline behaviour — the paper's\n"
      "central distributed result.\n");
  return 0;
}
