// Quickstart — the smallest complete use of the library.
//
// Builds a single-site real-time database running the priority ceiling
// protocol, feeds it a batch of transactions, and prints the two measures
// the paper reports: normalized throughput and the percentage of
// deadline-missing transactions.
//
//   $ ./quickstart
//
// See protocol_shootout.cpp for a comparison across protocols and
// tracking_radar.cpp / replicated_views.cpp for the distributed schemes.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/system.hpp"

int main() {
  using namespace rtdb;

  // 1. Describe the system: one site, a 200-object database, 2tu of CPU
  //    and 1tu of (parallel) disk time per object access.
  core::SystemConfig config;
  config.protocol = core::Protocol::kPriorityCeiling;
  config.db_objects = 200;
  config.cpu_per_object = sim::Duration::units(2);
  config.io_per_object = sim::Duration::units(1);

  // 2. Describe the load: 500 update transactions of 8 objects each,
  //    Poisson arrivals (one per 40tu on average), hard deadlines
  //    proportional to transaction size, priorities assigned
  //    earliest-deadline-first on arrival.
  config.workload.transaction_count = 500;
  config.workload.size_min = 8;
  config.workload.size_max = 8;
  config.workload.mean_interarrival = sim::Duration::units(40);
  config.workload.slack_min = 10;
  config.workload.slack_max = 20;
  config.workload.est_time_per_object = sim::Duration::units(4);
  config.seed = 42;

  // 3. Run the batch to completion (every transaction commits or is
  //    aborted at its deadline) and read the monitor.
  core::System system{config};
  system.run_to_completion();
  const stats::Metrics m = system.metrics();

  std::printf("protocol            : %s\n", core::to_string(config.protocol));
  std::printf("transactions        : %llu processed, %llu committed, %llu missed\n",
              (unsigned long long)m.processed, (unsigned long long)m.committed,
              (unsigned long long)m.missed);
  std::printf("%% deadline-missing  : %.2f\n", m.pct_missed);
  std::printf("throughput          : %.1f objects/sec (normalized)\n",
              m.throughput_objects_per_sec);
  std::printf("mean response       : %.1f time units\n", m.avg_response_units);
  std::printf("mean blocked        : %.1f time units\n", m.avg_blocked_units);
  std::printf("virtual time elapsed: %.1f time units\n",
              (system.kernel().now() - sim::TimePoint::origin()).as_units());

  // 4. The same experiment, averaged over 10 seeds, in three lines:
  auto results = core::ExperimentRunner::run_many(config, 10);
  std::printf("\n10-run average      : %.1f objects/sec, %.2f%% missed\n",
              core::ExperimentRunner::mean_throughput(results),
              core::ExperimentRunner::mean_pct_missed(results));
  return 0;
}
