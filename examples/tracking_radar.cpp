// Tracking — the application the paper's introduction motivates: "both the
// update and query on a tracking data of a missile must be processed within
// the given deadlines; otherwise, the information provided could be of
// little value", and §4's "distributed tracking in which each radar station
// maintains its view and makes it available to other sites".
//
// Three radar stations, each owning a partition of track objects (its own
// view) replicated at the other stations. Periodic update transactions
// refresh each station's local tracks in step with its scan; aperiodic
// query transactions read a temporally consistent picture. The example
// runs the local ceiling scheme and reports deadline behaviour per
// transaction class plus the replication lag (§4's "time lag") that
// queries of remote views observe.

#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace rtdb;

  core::SystemConfig config;
  config.scheme = core::DistScheme::kLocalCeiling;
  config.sites = 3;
  config.db_objects = 90;  // 30 tracks per station
  config.cpu_per_object = sim::Duration::units(2);
  config.io_per_object = sim::Duration::zero();  // memory-resident tracks
  config.comm_delay = sim::Duration::units(3);

  // Aperiodic queries: operators asking for track pictures.
  config.workload.transaction_count = 300;
  config.workload.read_only_fraction = 1.0;
  config.workload.size_min = 4;
  config.workload.size_max = 10;
  config.workload.mean_interarrival = sim::Duration::units(12);
  config.workload.slack_min = 4;
  config.workload.slack_max = 8;
  config.workload.est_time_per_object = sim::Duration::units(3);

  // Periodic scan updates: each station refreshes 6 of its tracks per
  // revolution ("a local track would be updated periodically in
  // conjunction with repetitive scanning"). Implicit deadline = period.
  for (std::uint32_t station = 0; station < 3; ++station) {
    workload::PeriodicSource scan;
    scan.period = sim::Duration::units(40);
    scan.phase = sim::Duration::units(5 + station * 7);  // staggered dishes
    scan.size = 6;
    scan.read_only = false;
    scan.deadline_slack = 1.0;
    scan.home_site = station;  // each station refreshes its own view
    config.workload.periodic.push_back(scan);
  }
  config.seed = 7;

  core::System system{config};
  // Periodic sources run forever; bound the mission time explicitly.
  system.start();
  system.kernel().run_until(sim::TimePoint::origin() +
                            sim::Duration::units(4000));

  // Per-class statistics from the raw monitor records.
  std::uint64_t scans = 0, scan_missed = 0, queries = 0, query_missed = 0;
  for (const stats::TxnRecord& r : system.monitor().records()) {
    if (!r.processed) continue;
    if (r.read_only) {
      ++queries;
      query_missed += r.missed_deadline ? 1 : 0;
    } else {
      ++scans;
      scan_missed += r.missed_deadline ? 1 : 0;
    }
  }
  std::printf("== distributed tracking, local ceiling scheme ==\n");
  std::printf("scan updates : %llu processed, %llu missed their revolution\n",
              (unsigned long long)scans, (unsigned long long)scan_missed);
  std::printf("track queries: %llu processed, %llu missed their deadline\n",
              (unsigned long long)queries, (unsigned long long)query_missed);

  std::printf("\nreplication (the price of decoupling):\n");
  for (net::SiteId s = 0; s < 3; ++s) {
    const auto& rep = *system.site(s).replication;
    std::printf(
        "  station %u: %llu remote track versions applied, view lag mean "
        "%.1ftu / max %.1ftu\n",
        s, (unsigned long long)rep.updates_applied(),
        rep.mean_lag().as_units(), rep.max_lag().as_units());
  }
  std::printf(
      "\nEvery station answered queries from its own replica without ever\n"
      "holding a lock across the network; remote views lag by roughly the\n"
      "communication delay (%.0ftu) - the temporal inconsistency the paper\n"
      "accepts in exchange for responsiveness.\n",
      config.comm_delay.as_units());
  return 0;
}
