#!/bin/sh
# Source scan for nondeterminism hazards in artifact-producing code.
#
# Sweep artifacts (JSON/CSV) must be byte-identical across runs and across
# --jobs parallelism; CI cmp-gates that. It only holds if the code that
# produces them never consults wall clocks, ambient entropy, or containers
# with unspecified iteration order. This lint fails on:
#
#   * std::random_device                          ambient entropy
#   * rand( / srand(                              C PRNG, ambient seeding
#   * std::chrono::{system,steady}_clock          wall clocks
#   * range-for iteration over an unordered_{map,set} member or local
#     (order is unspecified and varies across libstdc++ versions and hash
#      seeds; use std::map / std::set, or sort before emitting)
#
# Allowlisted, by design (see DESIGN.md on the determinism contract):
#   * src/rt/             real-thread backend: genuinely physical time, and
#                         its artifacts are exempt from byte-identity
#   * src/exp/progress.*  stderr progress meter: wall clock for humans only,
#                         never written into artifacts
#
# bench/ and tests/ are out of scope: benches only orchestrate sweeps over
# the library (all artifact bytes come from src/exp/), and tests are not
# artifact-producing.
#
# Usage: tools/lint_determinism.sh [src-dir]   (default: src, repo-relative)

set -u
cd "$(dirname "$0")/.." || exit 2
scan_dir=${1:-src}
status=0

allowlisted() {
  case "$1" in
    src/rt/* | src/exp/progress.*) return 0 ;;
    *) return 1 ;;
  esac
}

report() {
  # $1 = what, $2 = file:line:text hits, newline-separated (possibly empty)
  [ -n "$2" ] || return 0
  old_ifs=$IFS
  IFS='
'
  for hit in $2; do
    allowlisted "${hit%%:*}" && continue
    echo "lint_determinism: $1: $hit"
    status=1
  done
  IFS=$old_ifs
}

report "ambient entropy" "$(grep -rnE 'std::random_device' "$scan_dir")"
report "C PRNG" "$(grep -rnE '(^|[^_[:alnum:]])s?rand\(' "$scan_dir")"
report "wall clock" "$(grep -rnE \
    'std::chrono::(system_clock|steady_clock)|[^_[:alnum:]](system_clock|steady_clock)::' \
    "$scan_dir")"

# Unordered-container iteration: per file, collect every identifier declared
# with an unordered_{map,set} type (declarations may wrap lines, so scan from
# the type token to the terminating ';'), then flag any range-for whose range
# expression is one of those identifiers.
for f in $(grep -rlE 'unordered_(map|set)' "$scan_dir"); do
  allowlisted "$f" && continue
  names=$(awk '
    /unordered_(map|set)</ { collecting = 1; buf = "" }
    collecting {
      buf = buf " " $0
      if (index($0, ";")) {
        collecting = 0
        sub(/;.*/, "", buf)
        if (match(buf, /[A-Za-z_][A-Za-z0-9_]*[[:space:]]*$/))
          print substr(buf, RSTART, RLENGTH)
      }
    }' "$f" | tr -d ' \t' | sort -u)
  for name in $names; do
    report "unordered-container iteration" \
        "$(grep -nE "for[[:space:]]*\(.*:[[:space:]]*${name}[[:space:]]*\)" \
            "$f" | sed "s|^|$f:|")"
  done
done

if [ "$status" -ne 0 ]; then
  echo "lint_determinism: FAIL — nondeterminism hazard in artifact-producing" \
       "code (allowlist: src/rt/, src/exp/progress.*)" >&2
else
  echo "lint_determinism: OK ($scan_dir clean)"
fi
exit "$status"
